//! The adaptive phase controller (§3.5 of the paper).
//!
//! After `warmup_epochs` of plain backpropagation, training alternates
//! between Phase GP (k batches with predicted gradients) and Phase BP
//! (m batches of true backpropagation). The paper's heuristic anneals the
//! k:m ratio — 4:1 for four epochs, 3:1 for four, 2:1 for four, then 1:1
//! for the remainder — using prediction more aggressively early, when
//! coarse gradients suffice, and conservatively late, when updates must be
//! precise.
//!
//! An optional *reactive* mode extends the heuristic: if the predictor's
//! recent MAPE exceeds a threshold, the controller falls back to BP for
//! the rest of the cycle (the "adaptively adjusts when and for how long"
//! behaviour of §3.5).

use serde::{Deserialize, Serialize};

/// Which phase a given batch runs in.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Phase {
    /// Plain backprop; predictor trains on true gradients (first `L`
    /// epochs).
    WarmUp,
    /// Backprop trains model and predictor (m batches per cycle).
    BP,
    /// Backprop skipped; predicted gradients update the model (k batches
    /// per cycle).
    GP,
}

/// Schedule parameters.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ScheduleConfig {
    /// Warm-up epochs (`L`; the paper suggests ~10 for full runs).
    pub warmup_epochs: usize,
    /// Epochs spent at each annealing stage (paper: 4).
    pub epochs_per_stage: usize,
    /// GP:BP ratios per stage, ending at the steady-state ratio
    /// (paper: 4:1, 3:1, 2:1 then 1:1).
    pub ratios: [(usize, usize); 4],
    /// Reactive fallback: if `Some(t)`, a cycle's remaining GP batches
    /// demote to BP when the predictor's recent MAPE exceeds `t` percent.
    pub mape_guard: Option<f32>,
}

impl Default for ScheduleConfig {
    fn default() -> Self {
        ScheduleConfig {
            warmup_epochs: 2,
            epochs_per_stage: 4,
            ratios: [(4, 1), (3, 1), (2, 1), (1, 1)],
            mape_guard: None,
        }
    }
}

impl ScheduleConfig {
    /// The paper's full-scale schedule (10 warm-up epochs).
    pub fn paper() -> Self {
        ScheduleConfig {
            warmup_epochs: 10,
            ..Default::default()
        }
    }

    /// GP:BP ratio `(k, m)` in force at `epoch` (0-based, counted from the
    /// end of warm-up).
    pub fn ratio_at(&self, epoch: usize) -> (usize, usize) {
        if epoch < self.warmup_epochs {
            return (0, 1);
        }
        let since = epoch - self.warmup_epochs;
        let stage = (since / self.epochs_per_stage.max(1)).min(self.ratios.len() - 1);
        self.ratios[stage]
    }
}

/// Tracks training position and decides each batch's phase.
#[derive(Debug, Clone)]
pub struct PhaseController {
    cfg: ScheduleConfig,
    epoch: usize,
    batch_in_epoch: usize,
    recent_mape: Option<f32>,
    // Statistics.
    counts: [u64; 3],
}

impl PhaseController {
    /// Creates a controller at epoch 0.
    pub fn new(cfg: ScheduleConfig) -> Self {
        PhaseController {
            cfg,
            epoch: 0,
            batch_in_epoch: 0,
            recent_mape: None,
            counts: [0; 3],
        }
    }

    /// Schedule configuration.
    pub fn config(&self) -> &ScheduleConfig {
        &self.cfg
    }

    /// Current epoch (0-based).
    pub fn epoch(&self) -> usize {
        self.epoch
    }

    /// Feeds the predictor's latest MAPE (percent) for the reactive guard.
    pub fn report_mape(&mut self, mape: f32) {
        self.recent_mape = Some(mape);
    }

    /// Phase of the *next* batch, without advancing.
    pub fn peek(&self) -> Phase {
        self.phase_for(self.epoch, self.batch_in_epoch)
    }

    /// Decides the phase for the next batch and advances the batch
    /// counter.
    pub fn next_phase(&mut self) -> Phase {
        let p = self.peek();
        self.batch_in_epoch += 1;
        self.counts[match p {
            Phase::WarmUp => 0,
            Phase::BP => 1,
            Phase::GP => 2,
        }] += 1;
        p
    }

    /// Marks the end of an epoch.
    pub fn end_epoch(&mut self) {
        self.epoch += 1;
        self.batch_in_epoch = 0;
    }

    /// `(warmup, bp, gp)` batch counts seen so far.
    pub fn phase_counts(&self) -> (u64, u64, u64) {
        (self.counts[0], self.counts[1], self.counts[2])
    }

    fn phase_for(&self, epoch: usize, batch: usize) -> Phase {
        if epoch < self.cfg.warmup_epochs {
            return Phase::WarmUp;
        }
        let (k, m) = self.cfg.ratio_at(epoch);
        let cycle = k + m;
        let pos = batch % cycle.max(1);
        // GP-first within each cycle (§3.5: "Initially, it proceeds with
        // Phase GP ... persists for k batches before switching to BP").
        let want_gp = pos < k;
        if want_gp {
            if let (Some(guard), Some(mape)) = (self.cfg.mape_guard, self.recent_mape) {
                if mape > guard {
                    return Phase::BP;
                }
            }
            Phase::GP
        } else {
            Phase::BP
        }
    }

    /// Fraction of batches that skip backprop at `epoch` under this
    /// schedule — feeds the analytic speed-up model.
    pub fn gp_fraction_at(&self, epoch: usize) -> f64 {
        if epoch < self.cfg.warmup_epochs {
            return 0.0;
        }
        let (k, m) = self.cfg.ratio_at(epoch);
        k as f64 / (k + m) as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn warmup_is_all_warmup() {
        let mut c = PhaseController::new(ScheduleConfig::default());
        for _ in 0..50 {
            assert_eq!(c.next_phase(), Phase::WarmUp);
        }
        c.end_epoch();
        assert_eq!(c.peek(), Phase::WarmUp); // epoch 1 still warm-up (L = 2)
    }

    #[test]
    fn first_stage_is_4_to_1() {
        let cfg = ScheduleConfig::default();
        let mut c = PhaseController::new(cfg);
        for _ in 0..cfg.warmup_epochs {
            c.end_epoch();
        }
        let phases: Vec<Phase> = (0..10).map(|_| c.next_phase()).collect();
        use Phase::*;
        assert_eq!(phases, vec![GP, GP, GP, GP, BP, GP, GP, GP, GP, BP]);
    }

    #[test]
    fn ratio_anneals_to_1_1() {
        let cfg = ScheduleConfig::default();
        assert_eq!(cfg.ratio_at(cfg.warmup_epochs), (4, 1));
        assert_eq!(cfg.ratio_at(cfg.warmup_epochs + 4), (3, 1));
        assert_eq!(cfg.ratio_at(cfg.warmup_epochs + 8), (2, 1));
        assert_eq!(cfg.ratio_at(cfg.warmup_epochs + 12), (1, 1));
        // Stays 1:1 forever after.
        assert_eq!(cfg.ratio_at(cfg.warmup_epochs + 100), (1, 1));
    }

    #[test]
    fn warmup_ratio_is_all_bp() {
        let cfg = ScheduleConfig::default();
        assert_eq!(cfg.ratio_at(0), (0, 1));
    }

    #[test]
    fn gp_fraction_anneals() {
        let c = PhaseController::new(ScheduleConfig::default());
        let w = c.config().warmup_epochs;
        assert_eq!(c.gp_fraction_at(0), 0.0);
        assert!((c.gp_fraction_at(w) - 0.8).abs() < 1e-9);
        assert!((c.gp_fraction_at(w + 12) - 0.5).abs() < 1e-9);
    }

    #[test]
    fn mape_guard_demotes_gp_to_bp() {
        let cfg = ScheduleConfig {
            warmup_epochs: 0,
            mape_guard: Some(1.0),
            ..Default::default()
        };
        let mut c = PhaseController::new(cfg);
        c.report_mape(5.0); // terrible predictor
        assert_eq!(c.next_phase(), Phase::BP);
        c.report_mape(0.1); // healthy predictor
        assert_eq!(c.next_phase(), Phase::GP);
    }

    #[test]
    fn phase_counts_accumulate() {
        let mut c = PhaseController::new(ScheduleConfig {
            warmup_epochs: 0,
            ..Default::default()
        });
        for _ in 0..10 {
            c.next_phase();
        }
        let (w, bp, gp) = c.phase_counts();
        assert_eq!(w, 0);
        assert_eq!(bp + gp, 10);
        assert_eq!(gp, 8); // 4:1 ratio
    }

    #[test]
    fn end_epoch_resets_cycle() {
        let mut c = PhaseController::new(ScheduleConfig {
            warmup_epochs: 0,
            ..Default::default()
        });
        c.next_phase();
        c.end_epoch();
        assert_eq!(c.epoch(), 1);
        assert_eq!(c.peek(), Phase::GP); // cycle restarts at GP
    }

    #[test]
    fn schedule_config_serde_round_trips() {
        // Exercises Option<f32> and [(usize, usize); 4] fields through the
        // activated serde derive.
        for guard in [None, Some(7.5f32)] {
            let cfg = ScheduleConfig {
                mape_guard: guard,
                ..Default::default()
            };
            let js = serde::json::to_string(&cfg);
            let back: ScheduleConfig = serde::json::from_str(&js).expect("config round-trip");
            assert_eq!(back, cfg, "{js}");
        }
        let js = serde::json::to_string(&Phase::GP);
        assert_eq!(serde::json::from_str::<Phase>(&js).unwrap(), Phase::GP);
    }
}
