//! The ADA-GP trainer: orchestrates warm-up, Phase BP and Phase GP over
//! any [`Module`] that exposes prediction sites.
//!
//! * Phase BP/warm-up (§3.3): forward (recording activations) → loss →
//!   backward → the predictor trains on each site's `(activation, true
//!   gradient)` pair → optimizer step with true gradients.
//! * Phase GP (§3.4): forward (recording activations) → the predictor
//!   writes predicted gradients into each site's weight parameter →
//!   optimizer step. **No backward pass runs** — this is where the
//!   hardware speed-up comes from.

use crate::controller::{Phase, PhaseController, ScheduleConfig};
use crate::metrics::{gradient_errors, GradientErrors, PredictorMetrics};
use crate::predictor::{Predictor, PredictorConfig};
use adagp_nn::module::{site_metas, ForwardCtx, Module};
use adagp_nn::optim::Optimizer;
use adagp_nn::SiteMeta;
use adagp_tensor::softmax::cross_entropy;
use adagp_tensor::{Prng, Tensor};

/// ADA-GP configuration.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AdaGpConfig {
    /// Phase schedule.
    pub schedule: ScheduleConfig,
    /// Predictor model hyper-parameters.
    pub predictor: PredictorConfig,
    /// Track per-layer MAPE/MSE during BP phases (Figure 15). Adds one
    /// extra predictor forward per site per BP batch.
    pub track_metrics: bool,
    /// Epsilon for the MAPE denominator clamp.
    pub mape_eps: f32,
    /// Rescale each predicted gradient to the exponential moving average
    /// of that site's true-gradient norm (observed during BP phases).
    /// The predictor then only has to get the *direction* right; magnitude
    /// drift — the dominant failure mode at short warm-ups — is absorbed
    /// by a single per-layer scalar. Costs one norm + one scalar multiply
    /// per site in hardware. Disable to reproduce the unscaled scheme
    /// (see the `ablation_calibration` harness).
    pub norm_calibration: bool,
    /// EMA decay for the per-site gradient-norm estimate.
    pub norm_ema_decay: f32,
}

impl Default for AdaGpConfig {
    fn default() -> Self {
        AdaGpConfig {
            schedule: ScheduleConfig::default(),
            predictor: PredictorConfig::default(),
            track_metrics: true,
            mape_eps: 1e-3,
            norm_calibration: true,
            norm_ema_decay: 0.9,
        }
    }
}

/// Per-batch training statistics.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BatchStats {
    /// Which phase the batch ran in.
    pub phase: Phase,
    /// Task loss of the batch (cross-entropy for classification).
    pub loss: f32,
    /// Mean predictor training loss across sites (BP phases only).
    pub predictor_loss: Option<f32>,
    /// Mean predictor MAPE across sites (BP phases with metrics only).
    pub mape: Option<f32>,
}

/// The ADA-GP training orchestrator.
pub struct AdaGp {
    cfg: AdaGpConfig,
    predictor: Predictor,
    controller: PhaseController,
    metrics: PredictorMetrics,
    sites: Vec<SiteMeta>,
    /// Per-site EMA of the true weight-gradient L2 norm (`None` until the
    /// first BP batch).
    grad_norm_ema: Vec<Option<f32>>,
}

impl std::fmt::Debug for AdaGp {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "AdaGp(sites={}, epoch={}, max_row={})",
            self.sites.len(),
            self.controller.epoch(),
            self.predictor.max_row_len()
        )
    }
}

impl AdaGp {
    /// Builds ADA-GP for `model`, sizing the shared predictor from the
    /// model's prediction sites.
    ///
    /// # Panics
    ///
    /// Panics if the model has no prediction sites.
    pub fn new(cfg: AdaGpConfig, model: &mut dyn Module, rng: &mut Prng) -> Self {
        let sites = site_metas(model);
        assert!(!sites.is_empty(), "model exposes no prediction sites");
        let predictor = Predictor::for_sites(cfg.predictor, &sites, rng);
        let metrics = PredictorMetrics::new(sites.len());
        let grad_norm_ema = vec![None; sites.len()];
        AdaGp {
            cfg,
            predictor,
            controller: PhaseController::new(cfg.schedule),
            metrics,
            sites,
            grad_norm_ema,
        }
    }

    /// The phase controller (e.g. to call
    /// [`PhaseController::end_epoch`]).
    pub fn controller_mut(&mut self) -> &mut PhaseController {
        &mut self.controller
    }

    /// Per-layer predictor metrics collected so far.
    pub fn metrics(&self) -> &PredictorMetrics {
        &self.metrics
    }

    /// Resets per-layer metrics (epoch boundary).
    pub fn reset_metrics(&mut self) {
        self.metrics.reset();
    }

    /// The shared predictor.
    pub fn predictor_mut(&mut self) -> &mut Predictor {
        &mut self.predictor
    }

    /// Site metadata in forward order.
    pub fn sites(&self) -> &[SiteMeta] {
        &self.sites
    }

    /// Trains one classification batch (images + integer labels),
    /// dispatching on the controller's phase.
    pub fn train_batch(
        &mut self,
        model: &mut dyn Module,
        opt: &mut dyn Optimizer,
        x: &Tensor,
        targets: &[usize],
    ) -> BatchStats {
        let phase = self.controller.next_phase();
        match phase {
            Phase::WarmUp | Phase::BP => {
                let logits = model.forward(x, &mut ForwardCtx::train_recording());
                let (loss, dlogits) = cross_entropy(&logits, targets);
                model.backward(&dlogits);
                let (pred_loss, mape) = self.train_predictor_from_sites(model);
                opt.step(model);
                if let Some(m) = mape {
                    self.controller.report_mape(m);
                }
                BatchStats {
                    phase,
                    loss,
                    predictor_loss: Some(pred_loss),
                    mape,
                }
            }
            Phase::GP => {
                let logits = model.forward(x, &mut ForwardCtx::train_recording());
                // Loss is computed for reporting only — no backward pass.
                let (loss, _) = cross_entropy(&logits, targets);
                self.apply_predicted_gradients(model);
                opt.step(model);
                BatchStats {
                    phase,
                    loss,
                    predictor_loss: None,
                    mape: None,
                }
            }
        }
    }

    /// Phase BP hook: trains the predictor on every site's recorded
    /// activation and true weight gradient. Returns `(mean predictor
    /// loss, mean MAPE if tracked)`.
    ///
    /// Call after `model.backward(...)` on a forward pass that recorded
    /// activations.
    pub fn train_predictor_from_sites(&mut self, model: &mut dyn Module) -> (f32, Option<f32>) {
        let mut losses = Vec::with_capacity(self.sites.len());
        let mut mapes = Vec::new();
        let predictor = &mut self.predictor;
        let metrics = &mut self.metrics;
        let norm_ema = &mut self.grad_norm_ema;
        let track = self.cfg.track_metrics;
        let eps = self.cfg.mape_eps;
        let decay = self.cfg.norm_ema_decay;
        let mut site_idx = 0usize;
        model.visit_sites(&mut |site| {
            let meta = site.meta();
            if let Some(act) = site.take_activation() {
                let true_grad = site.weight_param().grad.clone();
                let norm = true_grad.norm();
                norm_ema[site_idx] = Some(match norm_ema[site_idx] {
                    Some(prev) => decay * prev + (1.0 - decay) * norm,
                    None => norm,
                });
                if track {
                    let predicted = predictor.predict_gradient(&meta, &act);
                    let e: GradientErrors = gradient_errors(&predicted, &true_grad, eps);
                    metrics.record(site_idx, e);
                    mapes.push(e.mape);
                }
                losses.push(predictor.train_step(&meta, &act, &true_grad));
            }
            site_idx += 1;
        });
        let mean_loss = if losses.is_empty() {
            0.0
        } else {
            losses.iter().sum::<f32>() / losses.len() as f32
        };
        let mean_mape = if mapes.is_empty() {
            None
        } else {
            Some(mapes.iter().sum::<f32>() / mapes.len() as f32)
        };
        (mean_loss, mean_mape)
    }

    /// Phase GP hook: writes predicted gradients into every site's weight
    /// parameter. Call after a recording forward pass, then run the
    /// optimizer step; no backward pass is needed.
    pub fn apply_predicted_gradients(&mut self, model: &mut dyn Module) {
        let predictor = &mut self.predictor;
        let norm_ema = &self.grad_norm_ema;
        let calibrate = self.cfg.norm_calibration;
        let mut site_idx = 0usize;
        model.visit_sites(&mut |site| {
            let meta = site.meta();
            if let Some(act) = site.take_activation() {
                let mut grad = predictor.predict_gradient(&meta, &act);
                if calibrate {
                    if let Some(target_norm) = norm_ema[site_idx] {
                        let norm = grad.norm();
                        if norm > 1e-12 {
                            // Shrink freely toward the observed true-norm
                            // scale, but amplify by at most 2x: an
                            // undertrained predictor (near-zero head) must
                            // not have its noise inflated to full gradient
                            // magnitude.
                            let factor = (target_norm / norm).min(2.0);
                            grad.scale_in_place(factor);
                        }
                    }
                }
                let w = site.weight_param();
                w.zero_grad();
                w.accumulate_grad(&grad);
            }
            site_idx += 1;
        });
    }
}

/// Plain backpropagation baseline with the same reporting interface.
#[derive(Debug, Default)]
pub struct BaselineTrainer;

impl BaselineTrainer {
    /// Creates a baseline trainer.
    pub fn new() -> Self {
        BaselineTrainer
    }

    /// Trains one classification batch with standard backprop.
    pub fn train_batch(
        &mut self,
        model: &mut dyn Module,
        opt: &mut dyn Optimizer,
        x: &Tensor,
        targets: &[usize],
    ) -> BatchStats {
        let logits = model.forward(x, &mut ForwardCtx::train());
        let (loss, dlogits) = cross_entropy(&logits, targets);
        model.backward(&dlogits);
        opt.step(model);
        BatchStats {
            phase: Phase::BP,
            loss,
            predictor_loss: None,
            mape: None,
        }
    }
}

/// Evaluates top-1 accuracy of a classification model over test batches.
pub fn evaluate_accuracy(
    model: &mut dyn Module,
    batches: impl Iterator<Item = (Tensor, Vec<usize>)>,
) -> f32 {
    let mut correct = 0usize;
    let mut total = 0usize;
    for (x, targets) in batches {
        let logits = model.forward(&x, &mut ForwardCtx::eval());
        let c = logits.dim(1);
        for (i, &t) in targets.iter().enumerate() {
            let row = &logits.data()[i * c..(i + 1) * c];
            let pred = row
                .iter()
                .enumerate()
                .max_by(|a, b| a.1.total_cmp(b.1))
                .map(|(j, _)| j)
                .unwrap_or(0);
            if pred == t {
                correct += 1;
            }
            total += 1;
        }
    }
    if total == 0 {
        0.0
    } else {
        100.0 * correct as f32 / total as f32
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use adagp_nn::containers::Sequential;
    use adagp_nn::layers::{Conv2d, Flatten, Linear, Relu};
    use adagp_nn::optim::Sgd;

    fn tiny_model(rng: &mut Prng) -> Sequential {
        let mut m = Sequential::new();
        m.push(Conv2d::new(1, 4, 3, 1, 1, true, rng));
        m.push(Relu::new());
        m.push(Flatten::new());
        m.push(Linear::new(4 * 4 * 4, 3, true, rng));
        m
    }

    #[test]
    fn warmup_batches_report_warmup_phase() {
        let mut rng = Prng::seed_from_u64(0);
        let mut model = tiny_model(&mut rng);
        let mut adagp = AdaGp::new(AdaGpConfig::default(), &mut model, &mut rng);
        let mut opt = Sgd::new(0.01, 0.9);
        let x = Tensor::ones(&[2, 1, 4, 4]);
        let stats = adagp.train_batch(&mut model, &mut opt, &x, &[0, 1]);
        assert_eq!(stats.phase, Phase::WarmUp);
        assert!(stats.predictor_loss.is_some());
        assert!(stats.loss.is_finite());
    }

    #[test]
    fn gp_phase_skips_backward_but_updates_weights() {
        let mut rng = Prng::seed_from_u64(1);
        let mut model = tiny_model(&mut rng);
        let cfg = AdaGpConfig {
            schedule: ScheduleConfig {
                warmup_epochs: 0,
                ..Default::default()
            },
            ..Default::default()
        };
        let mut adagp = AdaGp::new(cfg, &mut model, &mut rng);
        let mut opt = Sgd::new(0.05, 0.0);
        let x = Tensor::ones(&[2, 1, 4, 4]);

        // Snapshot conv weights before the GP batch.
        let mut before = Vec::new();
        model.visit_sites(&mut |s| before.push(s.weight_param().value.clone()));

        let stats = adagp.train_batch(&mut model, &mut opt, &x, &[0, 1]);
        assert_eq!(stats.phase, Phase::GP);
        assert!(stats.predictor_loss.is_none());

        let mut after = Vec::new();
        model.visit_sites(&mut |s| after.push(s.weight_param().value.clone()));
        // Predicted gradients must have moved the weights.
        let moved = before
            .iter()
            .zip(after.iter())
            .any(|(b, a)| b.sub(a).norm() > 0.0);
        assert!(moved, "GP phase did not update any site weights");
    }

    #[test]
    fn schedule_is_followed_across_epochs() {
        let mut rng = Prng::seed_from_u64(2);
        let mut model = tiny_model(&mut rng);
        let cfg = AdaGpConfig {
            schedule: ScheduleConfig {
                warmup_epochs: 1,
                ..Default::default()
            },
            track_metrics: false,
            ..Default::default()
        };
        let mut adagp = AdaGp::new(cfg, &mut model, &mut rng);
        let mut opt = Sgd::new(0.01, 0.0);
        let x = Tensor::ones(&[2, 1, 4, 4]);
        // Epoch 0: warm-up.
        for _ in 0..5 {
            let s = adagp.train_batch(&mut model, &mut opt, &x, &[0, 1]);
            assert_eq!(s.phase, Phase::WarmUp);
        }
        adagp.controller_mut().end_epoch();
        // Epoch 1: 4:1 GP:BP.
        let phases: Vec<Phase> = (0..5)
            .map(|_| adagp.train_batch(&mut model, &mut opt, &x, &[0, 1]).phase)
            .collect();
        assert_eq!(
            phases,
            vec![Phase::GP, Phase::GP, Phase::GP, Phase::GP, Phase::BP]
        );
    }

    #[test]
    fn metrics_track_per_layer_mape() {
        let mut rng = Prng::seed_from_u64(3);
        let mut model = tiny_model(&mut rng);
        let mut adagp = AdaGp::new(AdaGpConfig::default(), &mut model, &mut rng);
        let mut opt = Sgd::new(0.01, 0.0);
        let x = Tensor::ones(&[2, 1, 4, 4]);
        adagp.train_batch(&mut model, &mut opt, &x, &[0, 1]);
        assert_eq!(adagp.metrics().layers(), 2);
        assert!(adagp.metrics().layer_mean(0).is_some());
        assert!(adagp.metrics().layer_mean(1).is_some());
    }

    #[test]
    fn baseline_trains() {
        let mut rng = Prng::seed_from_u64(4);
        let mut model = tiny_model(&mut rng);
        let mut baseline = BaselineTrainer::new();
        let mut opt = Sgd::new(0.01, 0.9);
        let x = Tensor::ones(&[2, 1, 4, 4]);
        let s1 = baseline.train_batch(&mut model, &mut opt, &x, &[0, 1]);
        assert!(s1.loss.is_finite());
    }

    #[test]
    fn evaluate_accuracy_on_trivial_data() {
        let mut rng = Prng::seed_from_u64(5);
        let mut model = tiny_model(&mut rng);
        let x = Tensor::ones(&[4, 1, 4, 4]);
        let targets = vec![0usize, 0, 0, 0];
        let acc = evaluate_accuracy(&mut model, std::iter::once((x, targets)));
        assert!((0.0..=100.0).contains(&acc));
    }
}
