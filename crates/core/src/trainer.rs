//! The ADA-GP trainer: orchestrates warm-up, Phase BP and Phase GP over
//! any [`Module`] that exposes prediction sites.
//!
//! * Phase BP/warm-up (§3.3): forward (recording activations) → loss →
//!   backward → the predictor trains on each site's `(activation, true
//!   gradient)` pair → optimizer step with true gradients.
//! * Phase GP (§3.4): forward (recording activations) → the predictor
//!   writes predicted gradients into each site's weight parameter →
//!   optimizer step. **No backward pass runs** — this is where the
//!   hardware speed-up comes from.
//!
//! [`AdaGp::train_epoch_pipelined`] realizes the paper's overlap at batch
//! granularity: batch generation, the model's forward/backward work and
//! the predictor's training updates run on three concurrent stages joined
//! by bounded queues, while staying bit-identical to the serial loop.

use crate::controller::{Phase, PhaseController, ScheduleConfig};
use crate::metrics::{gradient_errors, GradientErrors, PredictorMetrics};
use crate::predictor::{Predictor, PredictorConfig};
use adagp_nn::module::{site_metas, ForwardCtx, Module};
use adagp_nn::optim::Optimizer;
use adagp_nn::SiteMeta;
use adagp_obs as obs;
use adagp_runtime::{BoundedQueue, PipelineStats, StageReport, WaitGroup};
use adagp_tensor::softmax::cross_entropy;
use adagp_tensor::{Prng, Tensor};
use std::sync::Mutex;

/// ADA-GP configuration.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AdaGpConfig {
    /// Phase schedule.
    pub schedule: ScheduleConfig,
    /// Predictor model hyper-parameters.
    pub predictor: PredictorConfig,
    /// Track per-layer MAPE/MSE during BP phases (Figure 15). Adds one
    /// extra predictor forward per site per BP batch.
    pub track_metrics: bool,
    /// Epsilon for the MAPE denominator clamp.
    pub mape_eps: f32,
    /// Rescale each predicted gradient to the exponential moving average
    /// of that site's true-gradient norm (observed during BP phases).
    /// The predictor then only has to get the *direction* right; magnitude
    /// drift — the dominant failure mode at short warm-ups — is absorbed
    /// by a single per-layer scalar. Costs one norm + one scalar multiply
    /// per site in hardware. Disable to reproduce the unscaled scheme
    /// (see the `ablation_calibration` harness).
    pub norm_calibration: bool,
    /// EMA decay for the per-site gradient-norm estimate.
    pub norm_ema_decay: f32,
}

impl Default for AdaGpConfig {
    fn default() -> Self {
        AdaGpConfig {
            schedule: ScheduleConfig::default(),
            predictor: PredictorConfig::default(),
            track_metrics: true,
            mape_eps: 1e-3,
            norm_calibration: true,
            norm_ema_decay: 0.9,
        }
    }
}

/// Per-batch training statistics.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BatchStats {
    /// Which phase the batch ran in.
    pub phase: Phase,
    /// Task loss of the batch (cross-entropy for classification).
    pub loss: f32,
    /// Mean predictor training loss across sites (BP phases only).
    pub predictor_loss: Option<f32>,
    /// Mean predictor MAPE across sites (BP phases with metrics only).
    pub mape: Option<f32>,
}

/// The ADA-GP training orchestrator.
pub struct AdaGp {
    cfg: AdaGpConfig,
    predictor: Predictor,
    controller: PhaseController,
    metrics: PredictorMetrics,
    sites: Vec<SiteMeta>,
    /// Per-site EMA of the true weight-gradient L2 norm (`None` until the
    /// first BP batch).
    grad_norm_ema: Vec<Option<f32>>,
}

impl std::fmt::Debug for AdaGp {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "AdaGp(sites={}, epoch={}, max_row={})",
            self.sites.len(),
            self.controller.epoch(),
            self.predictor.max_row_len()
        )
    }
}

impl AdaGp {
    /// Builds ADA-GP for `model`, sizing the shared predictor from the
    /// model's prediction sites.
    ///
    /// # Panics
    ///
    /// Panics if the model has no prediction sites.
    pub fn new(cfg: AdaGpConfig, model: &mut dyn Module, rng: &mut Prng) -> Self {
        let sites = site_metas(model);
        assert!(!sites.is_empty(), "model exposes no prediction sites");
        let predictor = Predictor::for_sites(cfg.predictor, &sites, rng);
        let metrics = PredictorMetrics::new(sites.len());
        let grad_norm_ema = vec![None; sites.len()];
        AdaGp {
            cfg,
            predictor,
            controller: PhaseController::new(cfg.schedule),
            metrics,
            sites,
            grad_norm_ema,
        }
    }

    /// The phase controller (e.g. to call
    /// [`PhaseController::end_epoch`]).
    pub fn controller_mut(&mut self) -> &mut PhaseController {
        &mut self.controller
    }

    /// Per-layer predictor metrics collected so far.
    pub fn metrics(&self) -> &PredictorMetrics {
        &self.metrics
    }

    /// Resets per-layer metrics (epoch boundary).
    pub fn reset_metrics(&mut self) {
        self.metrics.reset();
    }

    /// The shared predictor.
    pub fn predictor_mut(&mut self) -> &mut Predictor {
        &mut self.predictor
    }

    /// Site metadata in forward order.
    pub fn sites(&self) -> &[SiteMeta] {
        &self.sites
    }

    /// Trains one classification batch (images + integer labels),
    /// dispatching on the controller's phase.
    pub fn train_batch(
        &mut self,
        model: &mut dyn Module,
        opt: &mut dyn Optimizer,
        x: &Tensor,
        targets: &[usize],
    ) -> BatchStats {
        let phase = self.controller.next_phase();
        obs::span(
            "train",
            || format!("batch ({phase:?})"),
            || match phase {
                Phase::WarmUp | Phase::BP => {
                    let logits = obs::span(
                        "train",
                        || "forward".to_string(),
                        || model.forward(x, &mut ForwardCtx::train_recording()),
                    );
                    let (loss, dlogits) = cross_entropy(&logits, targets);
                    obs::span(
                        "train",
                        || "backward".to_string(),
                        || model.backward(&dlogits),
                    );
                    let (pred_loss, mape) = obs::span(
                        "train",
                        || "train predictor".to_string(),
                        || self.train_predictor_from_sites(model),
                    );
                    opt.step(model);
                    if let Some(m) = mape {
                        self.controller.report_mape(m);
                    }
                    BatchStats {
                        phase,
                        loss,
                        predictor_loss: Some(pred_loss),
                        mape,
                    }
                }
                Phase::GP => {
                    let logits = obs::span(
                        "train",
                        || "forward".to_string(),
                        || model.forward(x, &mut ForwardCtx::train_recording()),
                    );
                    // Loss is computed for reporting only — no backward pass.
                    let (loss, _) = cross_entropy(&logits, targets);
                    obs::span(
                        "train",
                        || "apply predicted gradients".to_string(),
                        || self.apply_predicted_gradients(model),
                    );
                    opt.step(model);
                    BatchStats {
                        phase,
                        loss,
                        predictor_loss: None,
                        mape: None,
                    }
                }
            },
        )
    }

    /// Phase BP hook: trains the predictor on every site's recorded
    /// activation and true weight gradient. Returns `(mean predictor
    /// loss, mean MAPE if tracked)`.
    ///
    /// Call after `model.backward(...)` on a forward pass that recorded
    /// activations.
    pub fn train_predictor_from_sites(&mut self, model: &mut dyn Module) -> (f32, Option<f32>) {
        let mut losses = Vec::with_capacity(self.sites.len());
        let mut mapes = Vec::new();
        let predictor = &mut self.predictor;
        let metrics = &mut self.metrics;
        let norm_ema = &mut self.grad_norm_ema;
        let track = self.cfg.track_metrics;
        let eps = self.cfg.mape_eps;
        let decay = self.cfg.norm_ema_decay;
        let mut site_idx = 0usize;
        model.visit_sites(&mut |site| {
            let meta = site.meta();
            if let Some(act) = site.take_activation() {
                let true_grad = site.weight_param().grad.clone();
                update_norm_ema(&mut norm_ema[site_idx], decay, true_grad.norm());
                let (loss, mape) = train_predictor_on_example(
                    predictor, metrics, track, eps, site_idx, &meta, &act, &true_grad,
                );
                if let Some(m) = mape {
                    mapes.push(m);
                }
                losses.push(loss);
            }
            site_idx += 1;
        });
        let mean_loss = if losses.is_empty() {
            0.0
        } else {
            losses.iter().sum::<f32>() / losses.len() as f32
        };
        let mean_mape = if mapes.is_empty() {
            None
        } else {
            Some(mapes.iter().sum::<f32>() / mapes.len() as f32)
        };
        (mean_loss, mean_mape)
    }

    /// Phase GP hook: writes predicted gradients into every site's weight
    /// parameter. Call after a recording forward pass, then run the
    /// optimizer step; no backward pass is needed.
    pub fn apply_predicted_gradients(&mut self, model: &mut dyn Module) {
        apply_predicted_gradients_with(
            &mut self.predictor,
            &self.grad_norm_ema,
            self.cfg.norm_calibration,
            model,
        );
    }
}

/// Folds one observed true-gradient norm into a site's EMA.
fn update_norm_ema(ema: &mut Option<f32>, decay: f32, norm: f32) {
    *ema = Some(match *ema {
        Some(prev) => decay * prev + (1.0 - decay) * norm,
        None => norm,
    });
}

/// One site's Phase-BP predictor work: optional metrics pass, then a
/// training step. Shared by the serial loop and the pipelined predictor
/// stage so both touch the predictor in exactly the same order.
#[allow(clippy::too_many_arguments)]
fn train_predictor_on_example(
    predictor: &mut Predictor,
    metrics: &mut PredictorMetrics,
    track: bool,
    eps: f32,
    site_idx: usize,
    meta: &SiteMeta,
    act: &Tensor,
    true_grad: &Tensor,
) -> (f32, Option<f32>) {
    let mut mape = None;
    if track {
        let predicted = predictor.predict_gradient(meta, act);
        let e: GradientErrors = gradient_errors(&predicted, true_grad, eps);
        metrics.record(site_idx, e);
        mape = Some(e.mape);
    }
    (predictor.train_step(meta, act, true_grad), mape)
}

/// Phase-GP core: predicts, (optionally) norm-calibrates and installs a
/// gradient for every recorded site.
fn apply_predicted_gradients_with(
    predictor: &mut Predictor,
    norm_ema: &[Option<f32>],
    calibrate: bool,
    model: &mut dyn Module,
) {
    let mut site_idx = 0usize;
    model.visit_sites(&mut |site| {
        let meta = site.meta();
        if let Some(act) = site.take_activation() {
            let mut grad = predictor.predict_gradient(&meta, &act);
            if calibrate {
                if let Some(target_norm) = norm_ema[site_idx] {
                    let norm = grad.norm();
                    if norm > 1e-12 {
                        // Shrink freely toward the observed true-norm
                        // scale, but amplify by at most 2x: an
                        // undertrained predictor (near-zero head) must
                        // not have its noise inflated to full gradient
                        // magnitude.
                        let factor = (target_norm / norm).min(2.0);
                        grad.scale_in_place(factor);
                    }
                }
            }
            let w = site.weight_param();
            w.zero_grad();
            w.accumulate_grad(&grad);
        }
        site_idx += 1;
    });
}

/// One site's `(activation, true gradient)` pair queued for the pipelined
/// predictor stage.
struct PredictorExample {
    site_idx: usize,
    meta: SiteMeta,
    act: Tensor,
    true_grad: Tensor,
}

/// All predictor work produced by one Phase-BP batch.
struct PredictorJob {
    batch: usize,
    examples: Vec<PredictorExample>,
}

/// Outcome of [`AdaGp::train_epoch_pipelined`]: per-batch stats plus
/// per-stage busy/idle utilization counters.
#[derive(Debug, Clone)]
pub struct PipelinedEpochReport {
    /// Per-batch statistics in batch order. BP batches carry the predictor
    /// loss/MAPE computed by the (asynchronous) predictor stage.
    pub batches: Vec<BatchStats>,
    /// Busy/idle counters for the `datagen`, `train` and `predictor`
    /// stages.
    pub stages: Vec<StageReport>,
}

impl PipelinedEpochReport {
    /// Mean task loss across the epoch.
    pub fn mean_loss(&self) -> f32 {
        if self.batches.is_empty() {
            0.0
        } else {
            self.batches.iter().map(|b| b.loss).sum::<f32>() / self.batches.len() as f32
        }
    }
}

impl AdaGp {
    /// Trains one epoch with the batch pipeline of §3.4 realized at batch
    /// granularity: three stages — data generation, the model's
    /// forward/backward + optimizer work, and predictor training — run on
    /// separate threads joined by bounded queues ([`BoundedQueue`]).
    ///
    /// `gen(b)` must be a pure function of the batch index (the synthetic
    /// datasets in `adagp_nn::data` qualify), because it runs on the
    /// producer thread.
    ///
    /// **Determinism:** predictor updates are applied in batch order by a
    /// single worker, and every Phase-GP read of the predictor first drains
    /// the update queue (a [`WaitGroup`] flush barrier). The trained model,
    /// predictor, metrics and norm EMAs are therefore *bit-identical* to
    /// running [`AdaGp::train_batch`] serially over the same batches — the
    /// overlap buys wall-clock time, not different math. When the schedule's
    /// `mape_guard` is active (and metrics are tracked), the queue is also
    /// drained before each phase decision so the guard sees exactly the
    /// MAPEs the serial loop would.
    ///
    /// Call [`PhaseController::end_epoch`] afterwards, as with the serial
    /// loop.
    ///
    /// # Panics
    ///
    /// Panics if `queue_depth == 0`.
    pub fn train_epoch_pipelined<G>(
        &mut self,
        model: &mut dyn Module,
        opt: &mut dyn Optimizer,
        batches: usize,
        queue_depth: usize,
        gen: G,
    ) -> PipelinedEpochReport
    where
        G: Fn(usize) -> (Tensor, Vec<usize>) + Sync,
    {
        assert!(queue_depth > 0, "queue_depth must be positive");
        let AdaGp {
            cfg,
            predictor,
            controller,
            metrics,
            sites: _,
            grad_norm_ema,
        } = self;
        let track = cfg.track_metrics;
        let eps = cfg.mape_eps;
        let decay = cfg.norm_ema_decay;
        let calibrate = cfg.norm_calibration;
        // With the reactive guard on, phase decisions depend on the
        // predictor stage's MAPEs, so parity with the serial loop requires
        // draining the stage before every decision.
        let flush_every_batch = cfg.schedule.mape_guard.is_some() && track;

        let stats = PipelineStats::new(&["datagen", "train", "predictor"]);
        let batch_queue: BoundedQueue<(usize, Tensor, Vec<usize>)> = BoundedQueue::new(queue_depth);
        let pred_queue: BoundedQueue<PredictorJob> = BoundedQueue::new(queue_depth);
        let pending = WaitGroup::new();
        let predictor_cell = Mutex::new(predictor);
        let metrics_cell = Mutex::new(metrics);
        // (batch, mean predictor loss, mean MAPE) per BP batch, pushed by
        // the predictor stage as jobs complete.
        let bp_outcomes: Mutex<Vec<(usize, f32, Option<f32>)>> = Mutex::new(Vec::new());
        let mut out: Vec<(usize, BatchStats)> = Vec::with_capacity(batches);

        std::thread::scope(|s| {
            // Stage 0: batch generation. The stage threads are named so
            // their trace lanes are recognizable in a Perfetto dump.
            std::thread::Builder::new()
                .name("adagp-datagen".into())
                .spawn_scoped(s, || {
                    for b in 0..batches {
                        let (x, y) = stats.stage(0).busy(|| gen(b));
                        if stats.stage(0).idle(|| batch_queue.push((b, x, y))).is_err() {
                            break;
                        }
                    }
                    batch_queue.close();
                })
                .expect("spawn datagen stage");

            // Stage 2: predictor training (single worker => batch order).
            std::thread::Builder::new()
                .name("adagp-predictor".into())
                .spawn_scoped(s, || {
                    while let Some(job) = stats.stage(2).idle(|| pred_queue.pop()) {
                        stats.stage(2).busy(|| {
                            let mut predictor = predictor_cell.lock().unwrap();
                            let mut metrics = metrics_cell.lock().unwrap();
                            let mut losses = Vec::with_capacity(job.examples.len());
                            let mut mapes = Vec::new();
                            for ex in &job.examples {
                                let (loss, mape) = train_predictor_on_example(
                                    &mut predictor,
                                    &mut metrics,
                                    track,
                                    eps,
                                    ex.site_idx,
                                    &ex.meta,
                                    &ex.act,
                                    &ex.true_grad,
                                );
                                if let Some(m) = mape {
                                    mapes.push(m);
                                }
                                losses.push(loss);
                            }
                            let mean_loss = if losses.is_empty() {
                                0.0
                            } else {
                                losses.iter().sum::<f32>() / losses.len() as f32
                            };
                            let mean_mape = if mapes.is_empty() {
                                None
                            } else {
                                Some(mapes.iter().sum::<f32>() / mapes.len() as f32)
                            };
                            bp_outcomes
                                .lock()
                                .unwrap()
                                .push((job.batch, mean_loss, mean_mape));
                        });
                        pending.done();
                    }
                })
                .expect("spawn predictor stage");

            // Stage 1: the training loop (this thread).
            for _ in 0..batches {
                let Some((b, x, y)) = stats.stage(1).idle(|| batch_queue.pop()) else {
                    break;
                };
                if flush_every_batch {
                    stats.stage(1).idle(|| pending.wait());
                    report_latest_mape(controller, &bp_outcomes);
                }
                let phase = controller.next_phase();
                let batch_stats = match phase {
                    Phase::WarmUp | Phase::BP => {
                        let (batch_stats, examples) = stats.stage(1).busy(|| {
                            let logits = model.forward(&x, &mut ForwardCtx::train_recording());
                            let (loss, dlogits) = cross_entropy(&logits, &y);
                            model.backward(&dlogits);
                            // Harvest (activation, true gradient) pairs and
                            // EMAs on this thread (batch order); the job is
                            // handed to stage 2 below.
                            let mut examples = Vec::new();
                            let mut site_idx = 0usize;
                            model.visit_sites(&mut |site| {
                                let meta = site.meta();
                                if let Some(act) = site.take_activation() {
                                    let true_grad = site.weight_param().grad.clone();
                                    update_norm_ema(
                                        &mut grad_norm_ema[site_idx],
                                        decay,
                                        true_grad.norm(),
                                    );
                                    examples.push(PredictorExample {
                                        site_idx,
                                        meta,
                                        act,
                                        true_grad,
                                    });
                                }
                                site_idx += 1;
                            });
                            let batch_stats = BatchStats {
                                phase,
                                loss,
                                predictor_loss: None, // merged from stage 2 below
                                mape: None,
                            };
                            (batch_stats, examples)
                        });
                        pending.add(1);
                        // Blocking on a full predictor queue is waiting on
                        // stage 2, so it books as idle time — the measured
                        // stage occupancies must stay comparable to the
                        // sim's predicted utilizations.
                        let pushed = stats
                            .stage(1)
                            .idle(|| pred_queue.push(PredictorJob { batch: b, examples }));
                        if pushed.is_err() {
                            pending.done();
                        }
                        stats.stage(1).busy_more(|| opt.step(model));
                        batch_stats
                    }
                    Phase::GP => {
                        let loss = stats.stage(1).busy(|| {
                            let logits = model.forward(&x, &mut ForwardCtx::train_recording());
                            // Loss is computed for reporting only — no
                            // backward.
                            cross_entropy(&logits, &y).0
                        });
                        // Flush barrier: every queued predictor update must
                        // land before the predictor is read. This is
                        // waiting on stage 2, so it books as idle time.
                        stats.stage(1).idle(|| pending.wait());
                        stats.stage(1).busy_more(|| {
                            let mut predictor = predictor_cell.lock().unwrap();
                            apply_predicted_gradients_with(
                                &mut predictor,
                                grad_norm_ema,
                                calibrate,
                                model,
                            );
                            drop(predictor);
                            opt.step(model);
                        });
                        BatchStats {
                            phase,
                            loss,
                            predictor_loss: None,
                            mape: None,
                        }
                    }
                };
                out.push((b, batch_stats));
            }
            pred_queue.close();
            pending.wait();
        });

        report_latest_mape(controller, &bp_outcomes);

        // Merge the predictor stage's outcomes into the BP batches' stats.
        let outcomes = bp_outcomes.into_inner().unwrap();
        let mut report_batches = Vec::with_capacity(out.len());
        for (b, mut st) in out {
            if let Some(&(_, loss, mape)) = outcomes.iter().find(|&&(ob, _, _)| ob == b) {
                st.predictor_loss = Some(loss);
                st.mape = mape;
            }
            report_batches.push(st);
        }
        PipelinedEpochReport {
            batches: report_batches,
            stages: stats.reports(),
        }
    }
}

/// Feeds the controller the MAPE of the most recent completed BP batch —
/// the same "latest wins" semantics as the serial loop's `report_mape`.
fn report_latest_mape(
    controller: &mut PhaseController,
    outcomes: &Mutex<Vec<(usize, f32, Option<f32>)>>,
) {
    let guard = outcomes.lock().unwrap();
    if let Some(&(_, _, Some(mape))) = guard
        .iter()
        .filter(|&&(_, _, m)| m.is_some())
        .max_by_key(|&&(b, _, _)| b)
    {
        controller.report_mape(mape);
    }
}

/// Plain backpropagation baseline with the same reporting interface.
#[derive(Debug, Default)]
pub struct BaselineTrainer;

impl BaselineTrainer {
    /// Creates a baseline trainer.
    pub fn new() -> Self {
        BaselineTrainer
    }

    /// Trains one classification batch with standard backprop.
    pub fn train_batch(
        &mut self,
        model: &mut dyn Module,
        opt: &mut dyn Optimizer,
        x: &Tensor,
        targets: &[usize],
    ) -> BatchStats {
        let logits = model.forward(x, &mut ForwardCtx::train());
        let (loss, dlogits) = cross_entropy(&logits, targets);
        model.backward(&dlogits);
        opt.step(model);
        BatchStats {
            phase: Phase::BP,
            loss,
            predictor_loss: None,
            mape: None,
        }
    }
}

/// Evaluates top-1 accuracy of a classification model over test batches.
pub fn evaluate_accuracy(
    model: &mut dyn Module,
    batches: impl Iterator<Item = (Tensor, Vec<usize>)>,
) -> f32 {
    let mut correct = 0usize;
    let mut total = 0usize;
    for (x, targets) in batches {
        let logits = model.forward(&x, &mut ForwardCtx::eval());
        let c = logits.dim(1);
        for (i, &t) in targets.iter().enumerate() {
            let row = &logits.data()[i * c..(i + 1) * c];
            let pred = row
                .iter()
                .enumerate()
                .max_by(|a, b| a.1.total_cmp(b.1))
                .map(|(j, _)| j)
                .unwrap_or(0);
            if pred == t {
                correct += 1;
            }
            total += 1;
        }
    }
    if total == 0 {
        0.0
    } else {
        100.0 * correct as f32 / total as f32
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use adagp_nn::containers::Sequential;
    use adagp_nn::layers::{Conv2d, Flatten, Linear, Relu};
    use adagp_nn::optim::Sgd;

    fn tiny_model(rng: &mut Prng) -> Sequential {
        let mut m = Sequential::new();
        m.push(Conv2d::new(1, 4, 3, 1, 1, true, rng));
        m.push(Relu::new());
        m.push(Flatten::new());
        m.push(Linear::new(4 * 4 * 4, 3, true, rng));
        m
    }

    #[test]
    fn warmup_batches_report_warmup_phase() {
        let mut rng = Prng::seed_from_u64(0);
        let mut model = tiny_model(&mut rng);
        let mut adagp = AdaGp::new(AdaGpConfig::default(), &mut model, &mut rng);
        let mut opt = Sgd::new(0.01, 0.9);
        let x = Tensor::ones(&[2, 1, 4, 4]);
        let stats = adagp.train_batch(&mut model, &mut opt, &x, &[0, 1]);
        assert_eq!(stats.phase, Phase::WarmUp);
        assert!(stats.predictor_loss.is_some());
        assert!(stats.loss.is_finite());
    }

    #[test]
    fn gp_phase_skips_backward_but_updates_weights() {
        let mut rng = Prng::seed_from_u64(1);
        let mut model = tiny_model(&mut rng);
        let cfg = AdaGpConfig {
            schedule: ScheduleConfig {
                warmup_epochs: 0,
                ..Default::default()
            },
            ..Default::default()
        };
        let mut adagp = AdaGp::new(cfg, &mut model, &mut rng);
        let mut opt = Sgd::new(0.05, 0.0);
        let x = Tensor::ones(&[2, 1, 4, 4]);

        // Snapshot conv weights before the GP batch.
        let mut before = Vec::new();
        model.visit_sites(&mut |s| before.push(s.weight_param().value.clone()));

        let stats = adagp.train_batch(&mut model, &mut opt, &x, &[0, 1]);
        assert_eq!(stats.phase, Phase::GP);
        assert!(stats.predictor_loss.is_none());

        let mut after = Vec::new();
        model.visit_sites(&mut |s| after.push(s.weight_param().value.clone()));
        // Predicted gradients must have moved the weights.
        let moved = before
            .iter()
            .zip(after.iter())
            .any(|(b, a)| b.sub(a).norm() > 0.0);
        assert!(moved, "GP phase did not update any site weights");
    }

    #[test]
    fn schedule_is_followed_across_epochs() {
        let mut rng = Prng::seed_from_u64(2);
        let mut model = tiny_model(&mut rng);
        let cfg = AdaGpConfig {
            schedule: ScheduleConfig {
                warmup_epochs: 1,
                ..Default::default()
            },
            track_metrics: false,
            ..Default::default()
        };
        let mut adagp = AdaGp::new(cfg, &mut model, &mut rng);
        let mut opt = Sgd::new(0.01, 0.0);
        let x = Tensor::ones(&[2, 1, 4, 4]);
        // Epoch 0: warm-up.
        for _ in 0..5 {
            let s = adagp.train_batch(&mut model, &mut opt, &x, &[0, 1]);
            assert_eq!(s.phase, Phase::WarmUp);
        }
        adagp.controller_mut().end_epoch();
        // Epoch 1: 4:1 GP:BP.
        let phases: Vec<Phase> = (0..5)
            .map(|_| adagp.train_batch(&mut model, &mut opt, &x, &[0, 1]).phase)
            .collect();
        assert_eq!(
            phases,
            vec![Phase::GP, Phase::GP, Phase::GP, Phase::GP, Phase::BP]
        );
    }

    #[test]
    fn metrics_track_per_layer_mape() {
        let mut rng = Prng::seed_from_u64(3);
        let mut model = tiny_model(&mut rng);
        let mut adagp = AdaGp::new(AdaGpConfig::default(), &mut model, &mut rng);
        let mut opt = Sgd::new(0.01, 0.0);
        let x = Tensor::ones(&[2, 1, 4, 4]);
        adagp.train_batch(&mut model, &mut opt, &x, &[0, 1]);
        assert_eq!(adagp.metrics().layers(), 2);
        assert!(adagp.metrics().layer_mean(0).is_some());
        assert!(adagp.metrics().layer_mean(1).is_some());
    }

    /// Runs `batches` batches serially and pipelined from identical seeds
    /// and asserts the resulting model weights are bit-identical.
    fn assert_pipeline_matches_serial(cfg: AdaGpConfig, batches: usize, depth: usize) {
        let ds = |b: usize| {
            // Deterministic synthetic batches: pure function of b.
            let mut rng = Prng::seed_from_u64(1000 + b as u64);
            let x = adagp_tensor::init::gaussian(&[2, 1, 4, 4], 0.0, 1.0, &mut rng);
            (x, vec![b % 3, (b + 1) % 3])
        };

        // Serial arm.
        let mut rng = Prng::seed_from_u64(42);
        let mut m_serial = tiny_model(&mut rng);
        let mut adagp_serial = AdaGp::new(cfg, &mut m_serial, &mut rng);
        let mut opt_serial = Sgd::new(0.05, 0.9);
        let mut serial_stats = Vec::new();
        for b in 0..batches {
            let (x, y) = ds(b);
            serial_stats.push(adagp_serial.train_batch(&mut m_serial, &mut opt_serial, &x, &y));
        }

        // Pipelined arm (same seeds).
        let mut rng = Prng::seed_from_u64(42);
        let mut m_pipe = tiny_model(&mut rng);
        let mut adagp_pipe = AdaGp::new(cfg, &mut m_pipe, &mut rng);
        let mut opt_pipe = Sgd::new(0.05, 0.9);
        let report =
            adagp_pipe.train_epoch_pipelined(&mut m_pipe, &mut opt_pipe, batches, depth, ds);

        // Model weights must match bit for bit.
        let mut ws = Vec::new();
        m_serial.visit_params(&mut |p| ws.push(p.value.clone()));
        let mut wp = Vec::new();
        m_pipe.visit_params(&mut |p| wp.push(p.value.clone()));
        assert_eq!(ws, wp, "pipelined weights diverged from serial");

        // Phases, losses, predictor losses and MAPEs must match too.
        assert_eq!(report.batches.len(), serial_stats.len());
        for (b, (s, p)) in serial_stats.iter().zip(report.batches.iter()).enumerate() {
            assert_eq!(s.phase, p.phase, "batch {b} phase");
            assert_eq!(s.loss, p.loss, "batch {b} loss");
            assert_eq!(
                s.predictor_loss, p.predictor_loss,
                "batch {b} predictor loss"
            );
            assert_eq!(s.mape, p.mape, "batch {b} mape");
        }

        // And the predictor state: both arms must predict identically.
        let meta = adagp_serial.sites()[0].clone();
        let act = Tensor::ones(&[2, 4, 4, 4]);
        let gs = adagp_serial.predictor_mut().predict_gradient(&meta, &act);
        let gp = adagp_pipe.predictor_mut().predict_gradient(&meta, &act);
        assert_eq!(gs, gp, "predictor state diverged");

        // Stage accounting saw every batch.
        assert_eq!(report.stages[0].items as usize, batches);
        assert_eq!(report.stages[1].items as usize, batches);
    }

    #[test]
    fn pipelined_epoch_is_bit_identical_to_serial_warmup() {
        // All-BP (warm-up) epoch: maximum predictor-stage overlap.
        assert_pipeline_matches_serial(AdaGpConfig::default(), 10, 3);
    }

    #[test]
    fn pipelined_epoch_is_bit_identical_to_serial_gp_mix() {
        // GP-heavy schedule exercises the flush barrier.
        let cfg = AdaGpConfig {
            schedule: ScheduleConfig {
                warmup_epochs: 0,
                ..Default::default()
            },
            ..Default::default()
        };
        assert_pipeline_matches_serial(cfg, 12, 2);
    }

    #[test]
    fn pipelined_epoch_respects_mape_guard() {
        // With the reactive guard on, phase decisions depend on predictor
        // MAPEs; the pipeline must drain before each decision and still
        // match the serial loop exactly.
        let cfg = AdaGpConfig {
            schedule: ScheduleConfig {
                warmup_epochs: 0,
                mape_guard: Some(50.0),
                ..Default::default()
            },
            ..Default::default()
        };
        assert_pipeline_matches_serial(cfg, 8, 2);
    }

    #[test]
    fn pipelined_report_exposes_stage_utilization() {
        let mut rng = Prng::seed_from_u64(7);
        let mut model = tiny_model(&mut rng);
        let mut adagp = AdaGp::new(AdaGpConfig::default(), &mut model, &mut rng);
        let mut opt = Sgd::new(0.01, 0.0);
        let report = adagp.train_epoch_pipelined(&mut model, &mut opt, 4, 2, |b| {
            (Tensor::ones(&[2, 1, 4, 4]), vec![b % 3, (b + 1) % 3])
        });
        assert_eq!(report.stages.len(), 3);
        assert_eq!(report.stages[2].name, "predictor");
        // 4 warm-up (BP) batches => 4 predictor jobs processed.
        assert_eq!(report.stages[2].items, 4);
        assert!(report.mean_loss().is_finite());
        assert!(report.stages[1].utilization() > 0.0);
    }

    #[test]
    fn baseline_trains() {
        let mut rng = Prng::seed_from_u64(4);
        let mut model = tiny_model(&mut rng);
        let mut baseline = BaselineTrainer::new();
        let mut opt = Sgd::new(0.01, 0.9);
        let x = Tensor::ones(&[2, 1, 4, 4]);
        let s1 = baseline.train_batch(&mut model, &mut opt, &x, &[0, 1]);
        assert!(s1.loss.is_finite());
    }

    #[test]
    fn evaluate_accuracy_on_trivial_data() {
        let mut rng = Prng::seed_from_u64(5);
        let mut model = tiny_model(&mut rng);
        let x = Tensor::ones(&[4, 1, 4, 4]);
        let targets = vec![0usize, 0, 0, 0];
        let acc = evaluate_accuracy(&mut model, std::iter::once((x, targets)));
        assert!((0.0..=100.0).contains(&acc));
    }
}
