//! The shared predictor model (§3.6 of the paper).
//!
//! One predictor serves **all** layers of the DNN ("ADA-GP uses a single
//! predictor model for all layers" — contribution 2). Its structure
//! follows the paper: pooling layers normalize any activation map to a
//! fixed spatial size, a small `Conv2d` extracts features, and a single
//! fully connected layer emits gradient rows. The FC output is sized for
//! the *largest* layer; smaller layers mask and skip the surplus outputs.

use crate::reorg::{self, ReorganizedActivation};
use adagp_nn::layers::{Conv2d, Flatten, Linear, Relu};
use adagp_nn::module::{count_params, ForwardCtx, Module};
use adagp_nn::optim::{Adam, Optimizer};
use adagp_nn::{Param, PredictionSite, SiteMeta};
use adagp_tensor::pool::adaptive_avgpool;
use adagp_tensor::{Prng, Tensor};

/// Predictor hyper-parameters.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PredictorConfig {
    /// Spatial size every activation map is pooled to.
    pub pooled_size: usize,
    /// Channels of the feature conv.
    pub conv_channels: usize,
    /// Adam learning rate for predictor training (paper: 1e-4).
    pub lr: f32,
    /// Cap on the number of output-channel rows processed per batch (keeps
    /// predictor training cost bounded for very wide layers; rows beyond
    /// the cap are sub-sampled deterministically).
    pub max_rows_per_batch: usize,
}

impl Default for PredictorConfig {
    fn default() -> Self {
        PredictorConfig {
            pooled_size: 4,
            conv_channels: 8,
            lr: 1e-4,
            max_rows_per_batch: 256,
        }
    }
}

/// The shared gradient predictor.
///
/// Input (per site, after [`reorg::reorganize`]): `(out_ch, 1, W, H)`.
/// Output: `(out_ch, max_row_len)`, of which the first `row_len` columns
/// are meaningful for a given site.
#[derive(Debug)]
pub struct Predictor {
    cfg: PredictorConfig,
    net: PredictorNet,
    opt: Adam,
    max_row_len: usize,
}

/// The predictor's network: conv feature extractor + shared FC head.
#[derive(Debug)]
struct PredictorNet {
    conv: Conv2d,
    relu: Relu,
    flatten: Flatten,
    fc: Linear,
}

impl Module for PredictorNet {
    fn forward(&mut self, x: &Tensor, ctx: &mut ForwardCtx) -> Tensor {
        let h = self.conv.forward(x, ctx);
        let h = self.relu.forward(&h, ctx);
        let h = self.flatten.forward(&h, ctx);
        self.fc.forward(&h, ctx)
    }

    fn backward(&mut self, dy: &Tensor) -> Tensor {
        let g = self.fc.backward(dy);
        let g = self.flatten.backward(&g);
        let g = self.relu.backward(&g);
        self.conv.backward(&g)
    }

    fn visit_params(&mut self, f: &mut dyn FnMut(&mut Param)) {
        self.conv.visit_params(f);
        self.fc.visit_params(f);
    }
}

impl Predictor {
    /// Builds a predictor for a model whose largest gradient row is
    /// `max_row_len` (use [`Predictor::for_sites`] to derive it).
    ///
    /// # Panics
    ///
    /// Panics if `max_row_len == 0`.
    pub fn new(cfg: PredictorConfig, max_row_len: usize, rng: &mut Prng) -> Self {
        assert!(max_row_len > 0, "max_row_len must be positive");
        let feat = cfg.conv_channels * cfg.pooled_size * cfg.pooled_size;
        let mut fc = Linear::new(feat, max_row_len, true, rng).with_label("pred_fc");
        // Near-zero head: the gradients being predicted are tiny (1e-2 to
        // 1e-4), and an untrained predictor must not inject large random
        // updates if Phase GP starts before it has converged.
        fc.weight_param().value.scale_in_place(0.01);
        let net = PredictorNet {
            conv: Conv2d::new(1, cfg.conv_channels, 3, 1, 1, true, rng).with_label("pred_conv"),
            relu: Relu::new(),
            flatten: Flatten::new(),
            fc,
        };
        let opt = Adam::new(cfg.lr);
        Predictor {
            cfg,
            net,
            opt,
            max_row_len,
        }
    }

    /// Builds a predictor sized for the given site metadata (FC output =
    /// the largest `grads_per_out_channel` across sites, per §3.6: "the
    /// fully connected layer size depends on the largest layer").
    ///
    /// # Panics
    ///
    /// Panics if `sites` is empty.
    pub fn for_sites(cfg: PredictorConfig, sites: &[SiteMeta], rng: &mut Prng) -> Self {
        assert!(!sites.is_empty(), "predictor needs at least one site");
        let max_row = sites
            .iter()
            .map(|m| m.grads_per_out_channel())
            .max()
            .expect("nonempty");
        Self::new(cfg, max_row, rng)
    }

    /// The FC output width (largest gradient row the predictor can emit).
    pub fn max_row_len(&self) -> usize {
        self.max_row_len
    }

    /// Total trainable parameters of the predictor.
    pub fn param_count(&mut self) -> usize {
        count_params(&mut self.net)
    }

    /// Normalizes a reorganized activation to the predictor's fixed input
    /// spatial size.
    fn pool_input(&self, r: &ReorganizedActivation) -> Tensor {
        adaptive_avgpool(&r.input, self.cfg.pooled_size, self.cfg.pooled_size)
    }

    /// Predicts gradient rows for one site: returns `(out_ch, row_len)`.
    ///
    /// Masks the FC output down to the site's `row_len` ("for smaller
    /// layers, we simply mask and skip output operations").
    pub fn predict_rows(&mut self, meta: &SiteMeta, activation: &Tensor) -> Tensor {
        let r = reorg::reorganize(meta, activation);
        let pooled = self.pool_input(&r);
        let full = self.net.forward(&pooled, &mut ForwardCtx::eval());
        mask_rows(&full, r.row_len)
    }

    /// Predicts the full weight-gradient tensor for a site.
    pub fn predict_gradient(&mut self, meta: &SiteMeta, activation: &Tensor) -> Tensor {
        let rows = self.predict_rows(meta, activation);
        reorg::rows_to_gradient(meta, &rows)
    }

    /// One predictor training step against a true gradient (Phase BP /
    /// warm-up). Returns the masked-row MSE loss.
    ///
    /// # Panics
    ///
    /// Panics if shapes disagree with the site metadata.
    pub fn train_step(&mut self, meta: &SiteMeta, activation: &Tensor, true_grad: &Tensor) -> f32 {
        let r = reorg::reorganize(meta, activation);
        let target_rows = reorg::gradient_rows(meta, true_grad);
        let pooled = self.pool_input(&r);

        // Sub-sample rows for very wide layers to bound the cost.
        let rows = pooled.dim(0);
        let (pooled, target_rows) = if rows > self.cfg.max_rows_per_batch {
            let stride = rows.div_ceil(self.cfg.max_rows_per_batch);
            (
                subsample_rows(&pooled, stride),
                subsample_rows(&target_rows, stride),
            )
        } else {
            (pooled, target_rows)
        };

        let pred = self.net.forward(&pooled, &mut ForwardCtx::train());
        // Loss on the masked region only; surplus outputs receive zero grad.
        let (loss, dpred) = masked_mse(&pred, &target_rows, r.row_len);
        self.net.backward(&dpred);
        self.opt.step(&mut self.net);
        loss
    }
}

/// Copies the first `row_len` columns of `(n, max_row)` into `(n, row_len)`.
fn mask_rows(full: &Tensor, row_len: usize) -> Tensor {
    let (n, max_row) = (full.dim(0), full.dim(1));
    assert!(row_len <= max_row, "row_len exceeds predictor capacity");
    if row_len == max_row {
        return full.clone();
    }
    let mut out = vec![0.0f32; n * row_len];
    for i in 0..n {
        out[i * row_len..(i + 1) * row_len]
            .copy_from_slice(&full.data()[i * max_row..i * max_row + row_len]);
    }
    Tensor::from_vec(out, &[n, row_len])
}

/// Every `stride`-th row of a rank-2/4 tensor along axis 0.
fn subsample_rows(t: &Tensor, stride: usize) -> Tensor {
    let n = t.dim(0);
    let rest: usize = t.shape()[1..].iter().product();
    let picked: Vec<usize> = (0..n).step_by(stride).collect();
    let mut out = Vec::with_capacity(picked.len() * rest);
    for &i in &picked {
        out.extend_from_slice(&t.data()[i * rest..(i + 1) * rest]);
    }
    let mut shape = vec![picked.len()];
    shape.extend_from_slice(&t.shape()[1..]);
    Tensor::from_vec(out, &shape)
}

/// MSE over the first `row_len` columns; gradient is zero elsewhere.
fn masked_mse(pred: &Tensor, target: &Tensor, row_len: usize) -> (f32, Tensor) {
    let (n, max_row) = (pred.dim(0), pred.dim(1));
    assert_eq!(target.dim(0), n, "target row count mismatch");
    assert_eq!(target.dim(1), row_len, "target row length mismatch");
    let count = (n * row_len).max(1) as f32;
    let mut grad = Tensor::zeros(pred.shape());
    let mut loss = 0.0f32;
    for i in 0..n {
        for j in 0..row_len {
            let d = pred.data()[i * max_row + j] - target.data()[i * row_len + j];
            loss += d * d;
            grad.data_mut()[i * max_row + j] = 2.0 * d / count;
        }
    }
    (loss / count, grad)
}

#[cfg(test)]
mod tests {
    use super::*;
    use adagp_nn::SiteKind;
    use adagp_tensor::init;

    fn conv_meta(out_ch: usize, in_ch: usize, k: usize) -> SiteMeta {
        SiteMeta {
            kind: SiteKind::Conv2d,
            weight_shape: vec![out_ch, in_ch, k, k],
            label: "c".into(),
        }
    }

    #[test]
    fn predict_shapes_match_weights() {
        let mut rng = Prng::seed_from_u64(0);
        let meta = conv_meta(8, 4, 3);
        let mut p = Predictor::for_sites(
            PredictorConfig::default(),
            std::slice::from_ref(&meta),
            &mut rng,
        );
        let act = init::gaussian(&[2, 8, 6, 6], 0.0, 1.0, &mut rng);
        let g = p.predict_gradient(&meta, &act);
        assert_eq!(g.shape(), &[8, 4, 3, 3]);
    }

    #[test]
    fn masking_handles_smaller_layers() {
        let mut rng = Prng::seed_from_u64(1);
        let big = conv_meta(8, 16, 3); // row 144
        let small = conv_meta(4, 2, 3); // row 18
        let mut p =
            Predictor::for_sites(PredictorConfig::default(), &[big, small.clone()], &mut rng);
        assert_eq!(p.max_row_len(), 144);
        let act = init::gaussian(&[2, 4, 5, 5], 0.0, 1.0, &mut rng);
        let g = p.predict_gradient(&small, &act);
        assert_eq!(g.shape(), &[4, 2, 3, 3]);
    }

    #[test]
    fn training_reduces_prediction_error() {
        // The predictor should learn a fixed activation->gradient mapping.
        let mut rng = Prng::seed_from_u64(2);
        let meta = conv_meta(4, 2, 3);
        let cfg = PredictorConfig {
            lr: 3e-3,
            ..Default::default()
        };
        let mut p = Predictor::for_sites(cfg, std::slice::from_ref(&meta), &mut rng);
        let act = init::gaussian(&[2, 4, 5, 5], 0.0, 1.0, &mut rng);
        let grad = init::gaussian(&[4, 2, 3, 3], 0.0, 0.05, &mut rng);
        let first = p.train_step(&meta, &act, &grad);
        let mut last = first;
        for _ in 0..200 {
            last = p.train_step(&meta, &act, &grad);
        }
        assert!(
            last < first * 0.2,
            "predictor did not learn: first {first}, last {last}"
        );
    }

    #[test]
    fn single_predictor_serves_multiple_sites() {
        let mut rng = Prng::seed_from_u64(3);
        let m1 = conv_meta(4, 2, 3);
        let m2 = SiteMeta {
            kind: SiteKind::Linear,
            weight_shape: vec![6, 12],
            label: "l".into(),
        };
        let mut p = Predictor::for_sites(
            PredictorConfig::default(),
            &[m1.clone(), m2.clone()],
            &mut rng,
        );
        let act1 = init::gaussian(&[2, 4, 5, 5], 0.0, 1.0, &mut rng);
        let act2 = init::gaussian(&[2, 6], 0.0, 1.0, &mut rng);
        assert_eq!(p.predict_gradient(&m1, &act1).shape(), &[4, 2, 3, 3]);
        assert_eq!(p.predict_gradient(&m2, &act2).shape(), &[6, 12]);
    }

    #[test]
    fn param_count_is_compact() {
        // The predictor must stay small relative to the host model — the
        // whole point of the single-predictor design.
        let mut rng = Prng::seed_from_u64(4);
        let meta = conv_meta(64, 64, 3); // row 576
        let mut p = Predictor::for_sites(PredictorConfig::default(), &[meta], &mut rng);
        let host_params = 64 * 64 * 9; // one conv layer alone
        assert!(p.param_count() < host_params * 3);
    }

    #[test]
    fn subsample_caps_wide_layers() {
        let mut rng = Prng::seed_from_u64(5);
        let meta = conv_meta(512, 2, 1); // 512 rows
        let cfg = PredictorConfig {
            max_rows_per_batch: 64,
            ..Default::default()
        };
        let mut p = Predictor::for_sites(cfg, std::slice::from_ref(&meta), &mut rng);
        let act = init::gaussian(&[1, 512, 2, 2], 0.0, 1.0, &mut rng);
        let grad = init::gaussian(&[512, 2, 1, 1], 0.0, 0.05, &mut rng);
        // Must not panic and must return a finite loss.
        let loss = p.train_step(&meta, &act, &grad);
        assert!(loss.is_finite());
    }

    #[test]
    fn masked_mse_ignores_surplus_columns() {
        let pred = Tensor::from_vec(vec![1.0, 99.0, 2.0, -99.0], &[2, 2]);
        let target = Tensor::from_vec(vec![1.0, 2.0], &[2, 1]);
        let (loss, grad) = masked_mse(&pred, &target, 1);
        assert_eq!(loss, 0.0);
        // Surplus columns (99, -99) contribute nothing.
        assert_eq!(grad.data(), &[0.0, 0.0, 0.0, 0.0]);
    }
}
