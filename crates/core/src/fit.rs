//! High-level training loop: the epoch/scheduler/phase plumbing that every
//! harness otherwise re-implements.

use crate::trainer::{evaluate_accuracy, AdaGp, AdaGpConfig, BaselineTrainer};
use adagp_nn::module::Module;
use adagp_nn::optim::Optimizer;
use adagp_nn::sched::ReduceLrOnPlateau;
use adagp_tensor::{Prng, Tensor};

/// A classification data source: indexable train/test batches.
///
/// Implemented for anything that can produce `(images, labels)` batches —
/// the synthetic datasets in `adagp_nn::data` qualify via the blanket impl
/// below.
pub trait BatchSource {
    /// Training batch `idx` of `batch_size` samples.
    fn train(&self, idx: usize, batch_size: usize) -> (Tensor, Vec<usize>);
    /// Test batch `idx` of `batch_size` samples.
    fn test(&self, idx: usize, batch_size: usize) -> (Tensor, Vec<usize>);
}

impl BatchSource for adagp_nn::data::VisionDataset {
    fn train(&self, idx: usize, batch_size: usize) -> (Tensor, Vec<usize>) {
        self.train_batch(idx, batch_size)
    }

    fn test(&self, idx: usize, batch_size: usize) -> (Tensor, Vec<usize>) {
        self.test_batch(idx, batch_size)
    }
}

/// Epoch-level training options.
#[derive(Debug, Clone, Copy)]
pub struct FitOptions {
    /// Number of epochs.
    pub epochs: usize,
    /// Batches per epoch.
    pub batches_per_epoch: usize,
    /// Samples per batch.
    pub batch_size: usize,
    /// Test batches used for the final evaluation.
    pub eval_batches: usize,
    /// Plateau scheduler on the epoch training loss (paper §5.2:
    /// `ReduceLROnPlateau`); `None` keeps a fixed rate.
    pub plateau: Option<(f32, usize)>,
}

impl Default for FitOptions {
    fn default() -> Self {
        FitOptions {
            epochs: 8,
            batches_per_epoch: 16,
            batch_size: 8,
            eval_batches: 4,
            plateau: Some((0.5, 3)),
        }
    }
}

/// Result of a fit: final accuracy plus per-epoch mean losses.
#[derive(Debug, Clone)]
pub struct FitReport {
    /// Final top-1 test accuracy, percent.
    pub accuracy: f32,
    /// Mean training loss per epoch.
    pub epoch_losses: Vec<f32>,
    /// `(warmup, bp, gp)` batch counts (all-BP for the baseline).
    pub phase_counts: (u64, u64, u64),
}

/// Trains `model` with ADA-GP end to end and evaluates it.
pub fn fit_adagp(
    model: &mut dyn Module,
    data: &dyn BatchSource,
    cfg: AdaGpConfig,
    opt: &mut dyn Optimizer,
    options: &FitOptions,
    rng: &mut Prng,
) -> FitReport {
    let mut adagp = AdaGp::new(cfg, model, rng);
    let mut sched = options.plateau.map(|(f, p)| ReduceLrOnPlateau::new(f, p));
    let mut epoch_losses = Vec::with_capacity(options.epochs);
    for _ in 0..options.epochs {
        let mut loss = 0.0f32;
        for b in 0..options.batches_per_epoch {
            let (x, y) = data.train(b, options.batch_size);
            loss += adagp.train_batch(model, opt, &x, &y).loss;
        }
        let mean = loss / options.batches_per_epoch.max(1) as f32;
        epoch_losses.push(mean);
        if let Some(s) = &mut sched {
            let lr = s.step(mean, opt.lr());
            opt.set_lr(lr);
        }
        adagp.controller_mut().end_epoch();
    }
    let accuracy = evaluate_accuracy(
        model,
        (0..options.eval_batches).map(|b| data.test(b, options.batch_size)),
    );
    FitReport {
        accuracy,
        epoch_losses,
        phase_counts: adagp.controller_mut().phase_counts(),
    }
}

/// Trains `model` with ADA-GP using the pipelined batch queue
/// ([`AdaGp::train_epoch_pipelined`]): batch generation, model work and
/// predictor updates overlap across batches. Produces bit-identical
/// results to [`fit_adagp`] — the pipeline buys wall-clock time, not
/// different math.
///
/// `queue_depth` bounds the prefetch/predictor queues (2–4 is plenty).
pub fn fit_adagp_pipelined<D: BatchSource + Sync>(
    model: &mut dyn Module,
    data: &D,
    cfg: AdaGpConfig,
    opt: &mut dyn Optimizer,
    options: &FitOptions,
    queue_depth: usize,
    rng: &mut Prng,
) -> FitReport {
    let mut adagp = AdaGp::new(cfg, model, rng);
    let mut sched = options.plateau.map(|(f, p)| ReduceLrOnPlateau::new(f, p));
    let mut epoch_losses = Vec::with_capacity(options.epochs);
    for _ in 0..options.epochs {
        let report =
            adagp.train_epoch_pipelined(model, opt, options.batches_per_epoch, queue_depth, |b| {
                data.train(b, options.batch_size)
            });
        let mean = report.mean_loss();
        epoch_losses.push(mean);
        if let Some(s) = &mut sched {
            let lr = s.step(mean, opt.lr());
            opt.set_lr(lr);
        }
        adagp.controller_mut().end_epoch();
    }
    let accuracy = evaluate_accuracy(
        model,
        (0..options.eval_batches).map(|b| data.test(b, options.batch_size)),
    );
    FitReport {
        accuracy,
        epoch_losses,
        phase_counts: adagp.controller_mut().phase_counts(),
    }
}

/// Trains `model` with plain backprop end to end and evaluates it — the
/// Table 1 baseline arm.
pub fn fit_baseline(
    model: &mut dyn Module,
    data: &dyn BatchSource,
    opt: &mut dyn Optimizer,
    options: &FitOptions,
) -> FitReport {
    let mut trainer = BaselineTrainer::new();
    let mut sched = options.plateau.map(|(f, p)| ReduceLrOnPlateau::new(f, p));
    let mut epoch_losses = Vec::with_capacity(options.epochs);
    let mut batches = 0u64;
    for _ in 0..options.epochs {
        let mut loss = 0.0f32;
        for b in 0..options.batches_per_epoch {
            let (x, y) = data.train(b, options.batch_size);
            loss += trainer.train_batch(model, opt, &x, &y).loss;
            batches += 1;
        }
        let mean = loss / options.batches_per_epoch.max(1) as f32;
        epoch_losses.push(mean);
        if let Some(s) = &mut sched {
            let lr = s.step(mean, opt.lr());
            opt.set_lr(lr);
        }
    }
    let accuracy = evaluate_accuracy(
        model,
        (0..options.eval_batches).map(|b| data.test(b, options.batch_size)),
    );
    FitReport {
        accuracy,
        epoch_losses,
        phase_counts: (0, batches, 0),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::controller::ScheduleConfig;
    use adagp_nn::containers::Sequential;
    use adagp_nn::data::{DatasetSpec, VisionDataset};
    use adagp_nn::layers::{Conv2d, Flatten, Linear, Relu};
    use adagp_nn::optim::Sgd;

    fn model(rng: &mut Prng) -> Sequential {
        let mut m = Sequential::new();
        m.push(Conv2d::new(3, 6, 3, 1, 1, true, rng));
        m.push(Relu::new());
        m.push(Flatten::new());
        m.push(Linear::new(6 * 12 * 12, 4, true, rng));
        m
    }

    #[test]
    fn fit_baseline_learns() {
        let ds = VisionDataset::new(DatasetSpec::tiny(4, 12), 1);
        let mut rng = Prng::seed_from_u64(1);
        let mut m = model(&mut rng);
        let mut opt = Sgd::new(0.02, 0.9);
        let report = fit_baseline(&mut m, &ds, &mut opt, &FitOptions::default());
        assert!(report.accuracy > 50.0, "accuracy {}", report.accuracy);
        assert_eq!(report.epoch_losses.len(), 8);
        // Loss decreases overall.
        assert!(report.epoch_losses.last().unwrap() < report.epoch_losses.first().unwrap());
    }

    #[test]
    fn fit_pipelined_matches_fit_serial() {
        let ds = VisionDataset::new(DatasetSpec::tiny(4, 12), 1);
        let cfg = AdaGpConfig {
            schedule: ScheduleConfig {
                warmup_epochs: 1,
                epochs_per_stage: 1,
                ..Default::default()
            },
            ..Default::default()
        };
        let options = FitOptions {
            epochs: 3,
            ..Default::default()
        };

        let mut rng = Prng::seed_from_u64(5);
        let mut m_serial = model(&mut rng);
        let mut opt = Sgd::new(0.02, 0.9);
        let serial = fit_adagp(&mut m_serial, &ds, cfg, &mut opt, &options, &mut rng);

        let mut rng = Prng::seed_from_u64(5);
        let mut m_pipe = model(&mut rng);
        let mut opt = Sgd::new(0.02, 0.9);
        let piped = fit_adagp_pipelined(&mut m_pipe, &ds, cfg, &mut opt, &options, 3, &mut rng);

        assert_eq!(serial.epoch_losses, piped.epoch_losses);
        assert_eq!(serial.accuracy, piped.accuracy);
        assert_eq!(serial.phase_counts, piped.phase_counts);
        let mut ws = Vec::new();
        m_serial.visit_params(&mut |p| ws.push(p.value.clone()));
        let mut wp = Vec::new();
        m_pipe.visit_params(&mut |p| wp.push(p.value.clone()));
        assert_eq!(ws, wp);
    }

    #[test]
    fn fit_adagp_learns_and_reports_phases() {
        let ds = VisionDataset::new(DatasetSpec::tiny(4, 12), 1);
        let mut rng = Prng::seed_from_u64(1);
        let mut m = model(&mut rng);
        let mut opt = Sgd::new(0.02, 0.9);
        let mut cfg = AdaGpConfig {
            schedule: ScheduleConfig {
                warmup_epochs: 2,
                epochs_per_stage: 1,
                ..Default::default()
            },
            track_metrics: false,
            ..Default::default()
        };
        cfg.predictor.lr = 1e-3;
        let report = fit_adagp(&mut m, &ds, cfg, &mut opt, &FitOptions::default(), &mut rng);
        assert!(report.accuracy > 40.0, "accuracy {}", report.accuracy);
        let (warmup, bp, gp) = report.phase_counts;
        assert_eq!(warmup, 32);
        assert!(gp > 0 && bp > 0);
    }
}
