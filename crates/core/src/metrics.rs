//! Predictor quality metrics: MAPE and MSE per layer (§6.1.2, Figure 15).

use adagp_tensor::Tensor;

/// Error between a predicted and a true gradient tensor.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct GradientErrors {
    /// Mean absolute percentage error, in percent (paper Eq. 1).
    pub mape: f32,
    /// Mean squared error.
    pub mse: f32,
}

/// Computes MAPE (percent) and MSE between predicted and true gradients.
///
/// The MAPE denominator is clamped to `eps` to avoid division by
/// near-zero gradients (the paper reports sub-1% MAPE which presupposes
/// such regularization).
///
/// # Panics
///
/// Panics if shapes differ.
pub fn gradient_errors(predicted: &Tensor, actual: &Tensor, eps: f32) -> GradientErrors {
    assert_eq!(
        predicted.shape(),
        actual.shape(),
        "gradient_errors: shape mismatch"
    );
    let n = predicted.len().max(1) as f32;
    let mut mape = 0.0f32;
    let mut mse = 0.0f32;
    for (&p, &a) in predicted.data().iter().zip(actual.data().iter()) {
        let d = a - p;
        mse += d * d;
        mape += (d / a.abs().max(eps)).abs();
    }
    GradientErrors {
        mape: 100.0 * mape / n,
        mse: mse / n,
    }
}

/// Running per-layer predictor metrics across an epoch (Figure 15 tracks
/// one curve per layer over 90 epochs).
#[derive(Debug, Clone, Default)]
pub struct PredictorMetrics {
    // Per-layer accumulators: (mape sum, mse sum, count).
    acc: Vec<(f64, f64, u64)>,
}

impl PredictorMetrics {
    /// Creates an empty tracker for `layers` layers.
    pub fn new(layers: usize) -> Self {
        PredictorMetrics {
            acc: vec![(0.0, 0.0, 0); layers],
        }
    }

    /// Number of tracked layers.
    pub fn layers(&self) -> usize {
        self.acc.len()
    }

    /// Records one observation for `layer`.
    ///
    /// # Panics
    ///
    /// Panics if `layer` is out of range.
    pub fn record(&mut self, layer: usize, errors: GradientErrors) {
        let slot = &mut self.acc[layer];
        slot.0 += errors.mape as f64;
        slot.1 += errors.mse as f64;
        slot.2 += 1;
    }

    /// Mean errors for `layer`, or `None` if nothing was recorded.
    pub fn layer_mean(&self, layer: usize) -> Option<GradientErrors> {
        let (mape, mse, n) = self.acc[layer];
        if n == 0 {
            return None;
        }
        Some(GradientErrors {
            mape: (mape / n as f64) as f32,
            mse: (mse / n as f64) as f32,
        })
    }

    /// Mean MAPE across all layers with observations.
    pub fn mean_mape(&self) -> f32 {
        let (sum, n) = self
            .acc
            .iter()
            .filter(|(_, _, c)| *c > 0)
            .fold((0.0f64, 0u64), |(s, n), (m, _, c)| {
                (s + m / *c as f64, n + 1)
            });
        if n == 0 {
            0.0
        } else {
            (sum / n as f64) as f32
        }
    }

    /// Clears all accumulators (call at epoch boundaries).
    pub fn reset(&mut self) {
        for slot in &mut self.acc {
            *slot = (0.0, 0.0, 0);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn perfect_prediction_zero_error() {
        let a = Tensor::from_vec(vec![0.1, -0.2, 0.3], &[3]);
        let e = gradient_errors(&a, &a, 1e-6);
        assert_eq!(e.mape, 0.0);
        assert_eq!(e.mse, 0.0);
    }

    #[test]
    fn known_errors() {
        let p = Tensor::from_vec(vec![1.1, 2.0], &[2]);
        let a = Tensor::from_vec(vec![1.0, 2.0], &[2]);
        let e = gradient_errors(&p, &a, 1e-6);
        // MAPE = mean(|0.1/1|, 0) * 100 = 5%.
        assert!((e.mape - 5.0).abs() < 1e-3);
        // MSE = 0.01 / 2.
        assert!((e.mse - 0.005).abs() < 1e-6);
    }

    #[test]
    fn eps_clamps_tiny_denominators() {
        let p = Tensor::from_vec(vec![0.1], &[1]);
        let a = Tensor::from_vec(vec![0.0], &[1]);
        let e = gradient_errors(&p, &a, 0.1);
        // |0.1 - 0| / max(0, 0.1) = 1 -> 100%.
        assert!((e.mape - 100.0).abs() < 1e-3);
    }

    #[test]
    fn tracker_means() {
        let mut t = PredictorMetrics::new(2);
        t.record(
            0,
            GradientErrors {
                mape: 2.0,
                mse: 0.5,
            },
        );
        t.record(
            0,
            GradientErrors {
                mape: 4.0,
                mse: 1.5,
            },
        );
        let m = t.layer_mean(0).unwrap();
        assert!((m.mape - 3.0).abs() < 1e-6);
        assert!((m.mse - 1.0).abs() < 1e-6);
        assert!(t.layer_mean(1).is_none());
        assert!((t.mean_mape() - 3.0).abs() < 1e-6);
    }

    #[test]
    fn reset_clears() {
        let mut t = PredictorMetrics::new(1);
        t.record(
            0,
            GradientErrors {
                mape: 1.0,
                mse: 1.0,
            },
        );
        t.reset();
        assert!(t.layer_mean(0).is_none());
    }
}
