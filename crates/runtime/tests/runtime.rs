//! Integration tests of the runtime's determinism and pipelining
//! contracts, exercised the way the tensor kernels and trainer use them.

use adagp_runtime::{det_chunk_len, with_threads, BoundedQueue, PipelineStats, ThreadPool};
use std::sync::atomic::{AtomicUsize, Ordering};

/// A toy "kernel" in the style of the tensor crate: each output row is
/// produced by exactly one chunk, with serial FP order within the row.
fn toy_kernel(rows: usize, cols: usize, pool: &ThreadPool) -> Vec<f32> {
    let mut out = vec![0.0f32; rows * cols];
    let chunk_rows = det_chunk_len(rows);
    pool.parallel_chunks(&mut out, chunk_rows * cols, |ci, slice| {
        for (r, row) in slice.chunks_mut(cols).enumerate() {
            let row_idx = ci * chunk_rows + r;
            let mut acc = 0.1f32;
            for (c, v) in row.iter_mut().enumerate() {
                // Deliberately non-associative accumulation.
                acc = acc * 1.000_1 + (row_idx * cols + c) as f32 * 1e-3;
                *v = acc;
            }
        }
    });
    out
}

#[test]
fn results_bit_identical_across_pool_sizes() {
    let reference = toy_kernel(97, 13, &ThreadPool::new(1));
    for threads in [2, 3, 4, 7] {
        let got = toy_kernel(97, 13, &ThreadPool::new(threads));
        assert_eq!(
            reference, got,
            "pool size {threads} diverged from the scalar reference"
        );
    }
}

#[test]
fn with_threads_gates_the_active_pool() {
    let reference = with_threads(1, || toy_kernel(40, 7, &adagp_runtime::pool()));
    for threads in [2, 4, 7] {
        let got = with_threads(threads, || toy_kernel(40, 7, &adagp_runtime::pool()));
        assert_eq!(reference, got, "threads={threads}");
    }
}

#[test]
fn producer_consumer_pipeline_delivers_everything_in_order() {
    let q: BoundedQueue<usize> = BoundedQueue::new(3);
    let stats = PipelineStats::new(&["produce", "consume"]);
    let consumed = std::thread::scope(|s| {
        s.spawn(|| {
            for i in 0..50 {
                let item = stats.stage(0).busy(|| i * i);
                if q.push(item).is_err() {
                    break;
                }
            }
            q.close();
        });
        let mut got = Vec::new();
        while let Some(v) = stats.stage(1).idle(|| q.pop()) {
            stats.stage(1).busy(|| got.push(v));
        }
        got
    });
    assert_eq!(consumed, (0..50).map(|i| i * i).collect::<Vec<_>>());
    let reports = stats.reports();
    assert_eq!(reports[0].items, 50);
    assert_eq!(reports[1].items, 50);
}

#[test]
fn parallel_for_covers_every_index_once() {
    let pool = ThreadPool::new(4);
    let hits: Vec<AtomicUsize> = (0..103).map(|_| AtomicUsize::new(0)).collect();
    pool.parallel_for(hits.len(), det_chunk_len(hits.len()), |range| {
        for i in range {
            hits[i].fetch_add(1, Ordering::Relaxed);
        }
    });
    assert!(hits.iter().all(|h| h.load(Ordering::Relaxed) == 1));
}

#[test]
fn close_unblocks_a_producer_stuck_on_a_full_queue() {
    // The queue is full and a producer is blocked inside `push`; closing
    // must wake it and hand the unsent item back (the pipelined trainer
    // relies on this for clean shutdown mid-epoch).
    let q: BoundedQueue<u8> = BoundedQueue::new(1);
    q.push(1).unwrap();
    std::thread::scope(|s| {
        let blocked = s.spawn(|| q.push(2));
        // Give the producer time to block on the bound.
        std::thread::sleep(std::time::Duration::from_millis(30));
        assert!(!blocked.is_finished(), "push must block while full");
        q.close();
        assert_eq!(blocked.join().unwrap(), Err(2), "item comes back on close");
    });
    // The queued item survives the close and drains normally.
    assert_eq!(q.pop(), Some(1));
    assert_eq!(q.pop(), None);
}

#[test]
fn parallel_map_handles_empty_and_singleton_inputs() {
    for threads in [1, 4] {
        let pool = ThreadPool::new(threads);
        let empty: Vec<u32> = pool.parallel_map(Vec::new(), |x: u32| x + 1);
        assert!(empty.is_empty(), "threads={threads}");
        let one = pool.parallel_map(vec![41u32], |x| x + 1);
        assert_eq!(one, vec![42], "threads={threads}");
    }
}

#[test]
fn kernels_remain_deterministic_inside_pool_workers() {
    // Nested use: a parallel region whose tasks themselves run the toy
    // kernel (the pipelined trainer's predictor thread does exactly this).
    let pool = ThreadPool::new(4);
    let reference = toy_kernel(31, 9, &ThreadPool::new(1));
    let results = pool.parallel_map(vec![(); 8], |()| toy_kernel(31, 9, &adagp_runtime::pool()));
    for r in results {
        assert_eq!(reference, r);
    }
}
