//! Lightweight pipeline instrumentation: per-stage busy/idle wall-clock
//! accounting so harnesses can report stage utilization.
//!
//! Each stage accumulates three lock-free counters — time spent doing
//! useful work (`busy`), time spent blocked on a queue (`idle`), and items
//! processed. The counters are `adagp-obs` atomics, so a stage can be
//! hammered from any thread with no mutex on the item path; they are
//! touched once per pipeline item (a training batch), not per tensor
//! element. When span recording is enabled (`ADAGP_TRACE`), every
//! [`Stage::busy`] / [`Stage::busy_more`] interval is additionally
//! recorded as a wall-clock trace span (category `stage`), so the
//! measured pipeline timeline loads in Perfetto next to `adagp-sim`'s
//! predicted one.

use adagp_obs as obs;
use std::time::Duration;

/// One instrumented pipeline stage.
#[derive(Debug)]
pub struct Stage {
    name: String,
    busy_ns: obs::Counter,
    idle_ns: obs::Counter,
    items: obs::Counter,
}

impl Stage {
    fn new(name: &str) -> Self {
        Stage {
            name: name.to_string(),
            busy_ns: obs::Counter::new(),
            idle_ns: obs::Counter::new(),
            items: obs::Counter::new(),
        }
    }

    /// Times `f`, accumulates into `acc`, and (when tracing is on)
    /// records the interval as a `stage` span named after the stage.
    fn timed<R>(&self, acc: &obs::Counter, as_span: bool, f: impl FnOnce() -> R) -> R {
        let start = obs::now_ns();
        let r = f();
        let end = obs::now_ns();
        acc.add(end.saturating_sub(start));
        if as_span && obs::enabled() {
            obs::record_span("stage", self.name.clone(), start, end);
        }
        r
    }

    /// Times `f` as useful work and counts one processed item.
    pub fn busy<R>(&self, f: impl FnOnce() -> R) -> R {
        let r = self.timed(&self.busy_ns, true, f);
        self.items.inc();
        r
    }

    /// Times `f` as useful work belonging to an already-counted item (no
    /// additional item is tallied). Use when one item's work is split
    /// around a wait that must be timed as [`Stage::idle`].
    pub fn busy_more<R>(&self, f: impl FnOnce() -> R) -> R {
        self.timed(&self.busy_ns, true, f)
    }

    /// Times `f` as blocking/waiting time (no item is counted, no span is
    /// recorded — idle gaps show up in a trace as exactly that: gaps).
    pub fn idle<R>(&self, f: impl FnOnce() -> R) -> R {
        self.timed(&self.idle_ns, false, f)
    }

    /// Snapshot of the stage's counters.
    pub fn report(&self) -> StageReport {
        StageReport {
            name: self.name.clone(),
            busy: Duration::from_nanos(self.busy_ns.get()),
            idle: Duration::from_nanos(self.idle_ns.get()),
            items: self.items.get(),
        }
    }
}

/// Immutable snapshot of one stage's counters.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StageReport {
    /// Stage name.
    pub name: String,
    /// Accumulated useful-work time.
    pub busy: Duration,
    /// Accumulated blocking/waiting time.
    pub idle: Duration,
    /// Items processed (one per [`Stage::busy`] call).
    pub items: u64,
}

impl StageReport {
    /// Busy fraction of the stage's observed wall clock, in `[0, 1]`
    /// (zero when nothing was timed).
    pub fn utilization(&self) -> f64 {
        let total = self.busy + self.idle;
        if total.is_zero() {
            0.0
        } else {
            self.busy.as_secs_f64() / total.as_secs_f64()
        }
    }
}

/// A fixed set of named stages timed across threads.
///
/// ```
/// use adagp_runtime::PipelineStats;
/// let stats = PipelineStats::new(&["datagen", "train"]);
/// let x = stats.stage(0).busy(|| 21 * 2);
/// assert_eq!(x, 42);
/// assert_eq!(stats.reports()[0].items, 1);
/// ```
#[derive(Debug)]
pub struct PipelineStats {
    stages: Vec<Stage>,
}

impl PipelineStats {
    /// Creates stats with one [`Stage`] per name.
    pub fn new(names: &[&str]) -> Self {
        PipelineStats {
            stages: names.iter().map(|n| Stage::new(n)).collect(),
        }
    }

    /// Stage `i` (in construction order).
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of range.
    pub fn stage(&self, i: usize) -> &Stage {
        &self.stages[i]
    }

    /// Snapshots every stage.
    pub fn reports(&self) -> Vec<StageReport> {
        self.stages.iter().map(Stage::report).collect()
    }

    /// One-line-per-stage human-readable utilization summary.
    pub fn summary(&self) -> String {
        self.reports()
            .iter()
            .map(|r| {
                format!(
                    "{:<12} busy {:>8.1?}  idle {:>8.1?}  items {:>5}  util {:>5.1}%",
                    r.name,
                    r.busy,
                    r.idle,
                    r.items,
                    100.0 * r.utilization()
                )
            })
            .collect::<Vec<_>>()
            .join("\n")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_accumulate() {
        let stats = PipelineStats::new(&["a", "b"]);
        stats
            .stage(0)
            .busy(|| std::thread::sleep(Duration::from_millis(2)));
        stats
            .stage(0)
            .idle(|| std::thread::sleep(Duration::from_millis(1)));
        stats.stage(0).busy(|| ());
        stats.stage(0).busy_more(|| ());
        let r = &stats.reports()[0];
        assert_eq!(r.items, 2, "busy_more must not tally an item");
        assert!(r.busy >= Duration::from_millis(2));
        assert!(r.idle >= Duration::from_millis(1));
        assert!(r.utilization() > 0.0 && r.utilization() <= 1.0);
        assert_eq!(stats.reports()[1].items, 0);
    }

    #[test]
    fn utilization_handles_zero_time() {
        let r = StageReport {
            name: "x".into(),
            busy: Duration::ZERO,
            idle: Duration::ZERO,
            items: 0,
        };
        assert_eq!(r.utilization(), 0.0);
    }

    #[test]
    fn summary_mentions_every_stage() {
        let stats = PipelineStats::new(&["datagen", "train", "predictor"]);
        let s = stats.summary();
        assert!(s.contains("datagen") && s.contains("train") && s.contains("predictor"));
    }

    #[test]
    fn stages_are_shareable_across_threads_without_locks() {
        let stats = PipelineStats::new(&["shared"]);
        std::thread::scope(|s| {
            for _ in 0..4 {
                s.spawn(|| {
                    for _ in 0..100 {
                        stats.stage(0).busy(|| std::hint::black_box(1 + 1));
                    }
                });
            }
        });
        assert_eq!(stats.reports()[0].items, 400);
    }
}
