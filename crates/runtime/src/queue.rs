//! A bounded blocking MPSC/MPMC channel built on `Mutex` + `Condvar`,
//! plus a [`WaitGroup`] for flush barriers.
//!
//! These are the coordination primitives behind the pipelined training
//! queue in `adagp_core::trainer`: a producer thread pushes generated
//! batches while the consumer trains, and the predictor-update worker is
//! flushed (via [`WaitGroup`]) before any Phase-GP read of the predictor.

use std::collections::VecDeque;
use std::sync::{Condvar, Mutex};

#[derive(Debug)]
struct QueueState<T> {
    items: VecDeque<T>,
    closed: bool,
}

/// A bounded blocking queue. `push` blocks while the queue is full; `pop`
/// blocks while it is empty. Closing wakes all waiters: pending items are
/// still drained, after which `pop` returns `None`.
///
/// ```
/// use adagp_runtime::BoundedQueue;
/// let q = BoundedQueue::new(2);
/// q.push(1).unwrap();
/// q.push(2).unwrap();
/// q.close();
/// assert_eq!(q.pop(), Some(1));
/// assert_eq!(q.pop(), Some(2));
/// assert_eq!(q.pop(), None);
/// ```
#[derive(Debug)]
pub struct BoundedQueue<T> {
    state: Mutex<QueueState<T>>,
    not_full: Condvar,
    not_empty: Condvar,
    capacity: usize,
}

impl<T> BoundedQueue<T> {
    /// Creates a queue holding at most `capacity` items.
    ///
    /// # Panics
    ///
    /// Panics if `capacity == 0`.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "queue capacity must be positive");
        BoundedQueue {
            state: Mutex::new(QueueState {
                items: VecDeque::with_capacity(capacity),
                closed: false,
            }),
            not_full: Condvar::new(),
            not_empty: Condvar::new(),
            capacity,
        }
    }

    /// Blocks until there is room, then enqueues `item`.
    ///
    /// # Errors
    ///
    /// Returns the item back if the queue was closed.
    pub fn push(&self, item: T) -> Result<(), T> {
        let mut s = self.state.lock().unwrap();
        while s.items.len() >= self.capacity && !s.closed {
            s = self.not_full.wait(s).unwrap();
        }
        if s.closed {
            return Err(item);
        }
        s.items.push_back(item);
        drop(s);
        self.not_empty.notify_one();
        Ok(())
    }

    /// Blocks until an item is available (returning it) or the queue is
    /// closed and drained (returning `None`).
    pub fn pop(&self) -> Option<T> {
        let mut s = self.state.lock().unwrap();
        loop {
            if let Some(item) = s.items.pop_front() {
                drop(s);
                self.not_full.notify_one();
                return Some(item);
            }
            if s.closed {
                return None;
            }
            s = self.not_empty.wait(s).unwrap();
        }
    }

    /// Non-blocking push: enqueues `item` only if there is room right now.
    ///
    /// # Errors
    ///
    /// Returns the item back, tagged with why it was refused: the queue is
    /// at capacity ([`TryPushError::Full`] — the caller should shed load,
    /// e.g. a server answering 503) or closed ([`TryPushError::Closed`]).
    pub fn try_push(&self, item: T) -> Result<(), TryPushError<T>> {
        let mut s = self.state.lock().unwrap();
        if s.closed {
            return Err(TryPushError::Closed(item));
        }
        if s.items.len() >= self.capacity {
            return Err(TryPushError::Full(item));
        }
        s.items.push_back(item);
        drop(s);
        self.not_empty.notify_one();
        Ok(())
    }

    /// Non-blocking pop: `None` if currently empty (closed or not).
    pub fn try_pop(&self) -> Option<T> {
        let mut s = self.state.lock().unwrap();
        let item = s.items.pop_front();
        drop(s);
        if item.is_some() {
            self.not_full.notify_one();
        }
        item
    }

    /// Closes the queue: pending pushes fail, pending items remain
    /// poppable, and blocked waiters wake up.
    pub fn close(&self) {
        let mut s = self.state.lock().unwrap();
        s.closed = true;
        drop(s);
        self.not_full.notify_all();
        self.not_empty.notify_all();
    }

    /// Whether the queue has been closed.
    pub fn is_closed(&self) -> bool {
        self.state.lock().unwrap().closed
    }

    /// Current number of queued items.
    pub fn len(&self) -> usize {
        self.state.lock().unwrap().items.len()
    }

    /// Whether the queue is currently empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

/// Why [`BoundedQueue::try_push`] refused an item (the item rides along
/// so the caller can still use it — e.g. answer the connection with 503).
#[derive(Debug, PartialEq, Eq)]
pub enum TryPushError<T> {
    /// The queue is at capacity right now.
    Full(T),
    /// The queue has been closed.
    Closed(T),
}

impl<T> TryPushError<T> {
    /// Recovers the refused item.
    pub fn into_inner(self) -> T {
        match self {
            TryPushError::Full(item) | TryPushError::Closed(item) => item,
        }
    }
}

/// Counts outstanding work items: `add` before dispatch, `done` on
/// completion, `wait` to flush. The pipelined trainer uses this to drain
/// the predictor-update stage before a Phase-GP batch reads the predictor.
#[derive(Debug, Default)]
pub struct WaitGroup {
    count: Mutex<usize>,
    zero: Condvar,
}

impl WaitGroup {
    /// Creates an empty wait group.
    pub fn new() -> Self {
        WaitGroup::default()
    }

    /// Registers `n` outstanding items.
    pub fn add(&self, n: usize) {
        *self.count.lock().unwrap() += n;
    }

    /// Marks one item complete.
    ///
    /// # Panics
    ///
    /// Panics if called more times than [`WaitGroup::add`] registered.
    pub fn done(&self) {
        let mut c = self.count.lock().unwrap();
        *c = c.checked_sub(1).expect("WaitGroup::done without add");
        if *c == 0 {
            self.zero.notify_all();
        }
    }

    /// Blocks until the outstanding count reaches zero.
    pub fn wait(&self) {
        let mut c = self.count.lock().unwrap();
        while *c > 0 {
            c = self.zero.wait(c).unwrap();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn fifo_order() {
        let q = BoundedQueue::new(8);
        for i in 0..5 {
            q.push(i).unwrap();
        }
        for i in 0..5 {
            assert_eq!(q.pop(), Some(i));
        }
    }

    #[test]
    fn push_blocks_at_capacity() {
        let q = BoundedQueue::new(2);
        let produced = AtomicUsize::new(0);
        std::thread::scope(|s| {
            s.spawn(|| {
                for i in 0..6 {
                    q.push(i).unwrap();
                    produced.fetch_add(1, Ordering::SeqCst);
                }
            });
            // Give the producer time to hit the bound.
            std::thread::sleep(std::time::Duration::from_millis(30));
            assert!(produced.load(Ordering::SeqCst) <= 3, "bound not enforced");
            for i in 0..6 {
                assert_eq!(q.pop(), Some(i));
            }
        });
    }

    #[test]
    fn close_rejects_pushes_and_drains() {
        let q = BoundedQueue::new(4);
        q.push("a").unwrap();
        q.close();
        assert_eq!(q.push("b"), Err("b"));
        assert_eq!(q.pop(), Some("a"));
        assert_eq!(q.pop(), None);
        assert!(q.is_closed());
    }

    #[test]
    fn close_wakes_blocked_consumer() {
        let q: BoundedQueue<u8> = BoundedQueue::new(1);
        std::thread::scope(|s| {
            let h = s.spawn(|| q.pop());
            std::thread::sleep(std::time::Duration::from_millis(20));
            q.close();
            assert_eq!(h.join().unwrap(), None);
        });
    }

    #[test]
    fn try_push_never_blocks_and_tags_the_refusal() {
        let q = BoundedQueue::new(2);
        assert_eq!(q.try_push(1), Ok(()));
        assert_eq!(q.try_push(2), Ok(()));
        assert_eq!(q.try_push(3), Err(TryPushError::Full(3)));
        assert_eq!(q.pop(), Some(1));
        assert_eq!(q.try_push(4), Ok(()));
        q.close();
        assert_eq!(q.try_push(5), Err(TryPushError::Closed(5)));
        assert_eq!(TryPushError::Full(7).into_inner(), 7);
        // Items enqueued before the close still drain in FIFO order.
        assert_eq!(q.pop(), Some(2));
        assert_eq!(q.pop(), Some(4));
        assert_eq!(q.pop(), None);
    }

    #[test]
    fn try_pop_never_blocks() {
        let q = BoundedQueue::new(1);
        assert_eq!(q.try_pop(), None::<u8>);
        q.push(9).unwrap();
        assert_eq!(q.try_pop(), Some(9));
    }

    #[test]
    fn wait_group_flushes() {
        let wg = WaitGroup::new();
        wg.add(3);
        std::thread::scope(|s| {
            s.spawn(|| {
                for _ in 0..3 {
                    std::thread::sleep(std::time::Duration::from_millis(5));
                    wg.done();
                }
            });
            wg.wait();
        });
        // A drained group waits without blocking.
        wg.wait();
    }
}
