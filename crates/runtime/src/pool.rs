//! A persistent shared thread pool with *deterministic* data-parallel
//! helpers.
//!
//! Design constraints (dictated by the tensor kernels built on top):
//!
//! * **Determinism** — [`ThreadPool::parallel_chunks`] splits the output
//!   buffer at fixed boundaries chosen by the *caller* (never by the pool
//!   size), and every chunk is produced by exactly one task that owns its
//!   output slice. Which worker runs which chunk is scheduling noise; the
//!   bytes written are not. No atomics or reductions run on the hot path.
//! * **No oversubscription** — a pool of size `k` spawns `k - 1` workers;
//!   the thread calling a `parallel_*` helper participates in executing
//!   queued chunks. A pool of size 1 therefore runs everything inline,
//!   which doubles as the scalar reference path.
//! * **Offline-friendly** — `std` only: a `Mutex<VecDeque>` job queue and a
//!   `Condvar`, no external dependencies.

use adagp_obs as obs;
use std::collections::VecDeque;
use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::sync::{Arc, Condvar, Mutex, OnceLock};

/// Tasks executed through [`ThreadPool::scope_run`] (global metric,
/// always on — one atomic add per task, never per element).
fn tasks_counter() -> &'static Arc<obs::Counter> {
    static C: OnceLock<Arc<obs::Counter>> = OnceLock::new();
    C.get_or_init(|| obs::registry().counter("runtime_pool_tasks_total"))
}

/// Microseconds a queued task waited before a worker picked it up.
/// Recorded only while tracing is enabled (the wait requires an extra
/// clock read at enqueue time).
fn queue_wait_us() -> &'static Arc<obs::Histogram> {
    static H: OnceLock<Arc<obs::Histogram>> = OnceLock::new();
    H.get_or_init(|| obs::registry().histogram("runtime_pool_queue_wait_us"))
}

/// Environment variable controlling the size of the global pool (total
/// threads, including the caller). Unset, unparsable or `0` falls back to
/// [`std::thread::available_parallelism`].
pub const THREADS_ENV: &str = "ADAGP_THREADS";

/// Upper bound on the number of chunks a `parallel_*` call creates. Fixed
/// (never derived from the pool size) so chunk boundaries — and therefore
/// results — are identical for every `ADAGP_THREADS`.
const MAX_CHUNKS: usize = 32;

/// Deterministic chunk length for `items` work items: depends only on
/// `items`, targeting at most [`MAX_CHUNKS`] chunks.
///
/// ```
/// use adagp_runtime::det_chunk_len;
/// assert_eq!(det_chunk_len(10), 1);   // fewer items than chunks
/// assert_eq!(det_chunk_len(64), 2);
/// assert_eq!(det_chunk_len(0), 1);    // degenerate input stays positive
/// ```
pub fn det_chunk_len(items: usize) -> usize {
    items.div_ceil(MAX_CHUNKS).max(1)
}

type Job = Box<dyn FnOnce() + Send>;

struct QueueState {
    jobs: VecDeque<Job>,
    shutdown: bool,
}

struct Shared {
    queue: Mutex<QueueState>,
    ready: Condvar,
}

/// Tracks outstanding tasks of one [`ThreadPool::scope_run`] call and holds
/// the first panic payload until the caller can resume it.
struct Latch {
    state: Mutex<LatchState>,
    done: Condvar,
}

struct LatchState {
    remaining: usize,
    panic: Option<Box<dyn std::any::Any + Send>>,
}

impl Latch {
    fn new(count: usize) -> Self {
        Latch {
            state: Mutex::new(LatchState {
                remaining: count,
                panic: None,
            }),
            done: Condvar::new(),
        }
    }

    fn complete(&self, panic: Option<Box<dyn std::any::Any + Send>>) {
        let mut s = self.state.lock().unwrap();
        s.remaining -= 1;
        if s.panic.is_none() {
            s.panic = panic;
        }
        if s.remaining == 0 {
            self.done.notify_all();
        }
    }

    fn is_done(&self) -> bool {
        self.state.lock().unwrap().remaining == 0
    }

    /// Blocks until every task completed, then returns the first panic.
    fn wait(&self) -> Option<Box<dyn std::any::Any + Send>> {
        let mut s = self.state.lock().unwrap();
        while s.remaining > 0 {
            s = self.done.wait(s).unwrap();
        }
        s.panic.take()
    }
}

/// A persistent pool of worker threads executing scoped, borrowing tasks.
///
/// Most callers want [`pool`] (the process-wide shared instance) rather
/// than constructing their own.
pub struct ThreadPool {
    shared: Arc<Shared>,
    workers: Vec<std::thread::JoinHandle<()>>,
    size: usize,
}

impl std::fmt::Debug for ThreadPool {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "ThreadPool(size={})", self.size)
    }
}

fn worker_loop(shared: Arc<Shared>) {
    loop {
        let job = {
            let mut q = shared.queue.lock().unwrap();
            loop {
                if let Some(j) = q.jobs.pop_front() {
                    break Some(j);
                }
                if q.shutdown {
                    break None;
                }
                q = shared.ready.wait(q).unwrap();
            }
        };
        match job {
            Some(j) => j(),
            None => return,
        }
    }
}

/// Parses a `ADAGP_THREADS`-style value; `None` means "use the default".
fn threads_from_str(raw: &str) -> Option<usize> {
    match raw.trim().parse::<usize>() {
        Ok(0) | Err(_) => None,
        Ok(n) => Some(n),
    }
}

fn default_threads() -> usize {
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
}

impl ThreadPool {
    /// Creates a pool of `size` total threads (`size - 1` workers plus the
    /// calling thread, which participates in every `parallel_*` call).
    ///
    /// # Panics
    ///
    /// Panics if `size == 0`.
    pub fn new(size: usize) -> Self {
        assert!(size > 0, "thread pool size must be positive");
        let shared = Arc::new(Shared {
            queue: Mutex::new(QueueState {
                jobs: VecDeque::new(),
                shutdown: false,
            }),
            ready: Condvar::new(),
        });
        let workers = (1..size)
            .map(|i| {
                let shared = Arc::clone(&shared);
                std::thread::Builder::new()
                    .name(format!("adagp-runtime-{i}"))
                    .spawn(move || worker_loop(shared))
                    .expect("spawn pool worker")
            })
            .collect();
        ThreadPool {
            shared,
            workers,
            size,
        }
    }

    /// Total threads (workers + the participating caller).
    pub fn size(&self) -> usize {
        self.size
    }

    /// Runs every task to completion on the pool's workers and the calling
    /// thread, blocking until all of them finish. Tasks may borrow from the
    /// caller's stack.
    ///
    /// # Panics
    ///
    /// If a task panics, the first payload is re-raised on the caller after
    /// all remaining tasks have completed (no task is abandoned mid-borrow).
    pub fn scope_run<'env>(&self, tasks: Vec<Box<dyn FnOnce() + Send + 'env>>) {
        if tasks.len() <= 1 || self.size == 1 {
            for (i, t) in tasks.into_iter().enumerate() {
                tasks_counter().inc();
                obs::span("pool", || format!("task {i} (inline)"), t);
            }
            return;
        }
        let latch = Arc::new(Latch::new(tasks.len()));
        {
            let mut q = self.shared.queue.lock().unwrap();
            for (i, task) in tasks.into_iter().enumerate() {
                let latch = Arc::clone(&latch);
                // Only pay the enqueue clock read while tracing.
                let enqueue_ns = if obs::enabled() { obs::now_ns() } else { 0 };
                let job: Box<dyn FnOnce() + Send + 'env> = Box::new(move || {
                    tasks_counter().inc();
                    let traced = obs::enabled();
                    let start_ns = if traced {
                        let start_ns = obs::now_ns();
                        queue_wait_us().record(start_ns.saturating_sub(enqueue_ns) / 1_000);
                        start_ns
                    } else {
                        0
                    };
                    let result = catch_unwind(AssertUnwindSafe(task));
                    if traced {
                        obs::record_span("pool", format!("task {i}"), start_ns, obs::now_ns());
                    }
                    latch.complete(result.err());
                });
                // SAFETY: `scope_run` does not return before the latch has
                // counted every task down, so borrows captured by `task`
                // strictly outlive every execution of `job`. The transmute
                // only erases the `'env` lifetime; the layout of a boxed
                // trait object is lifetime-independent.
                let job: Job = unsafe {
                    std::mem::transmute::<
                        Box<dyn FnOnce() + Send + 'env>,
                        Box<dyn FnOnce() + Send + 'static>,
                    >(job)
                };
                q.jobs.push_back(job);
            }
            self.shared.ready.notify_all();
        }
        // The caller helps drain the queue instead of blocking idle. It may
        // execute chunks belonging to a concurrent scope; that is harmless —
        // every job is self-contained and reports to its own latch.
        while !latch.is_done() {
            let job = self.shared.queue.lock().unwrap().jobs.pop_front();
            match job {
                Some(j) => j(),
                None => break,
            }
        }
        if let Some(payload) = latch.wait() {
            resume_unwind(payload);
        }
    }

    /// Calls `f(start..end)` over `0..len` split into fixed ranges of
    /// `chunk` indices, in parallel. Chunk boundaries depend only on `len`
    /// and `chunk`, never on the pool size.
    ///
    /// # Panics
    ///
    /// Panics if `chunk == 0`.
    pub fn parallel_for<F>(&self, len: usize, chunk: usize, f: F)
    where
        F: Fn(std::ops::Range<usize>) + Sync,
    {
        assert!(chunk > 0, "parallel_for: chunk must be positive");
        let f = &f;
        let tasks: Vec<Box<dyn FnOnce() + Send + '_>> = (0..len)
            .step_by(chunk)
            .map(|start| {
                let end = (start + chunk).min(len);
                Box::new(move || f(start..end)) as Box<dyn FnOnce() + Send + '_>
            })
            .collect();
        self.scope_run(tasks);
    }

    /// Splits `out` into fixed chunks of `chunk` elements and calls
    /// `f(chunk_index, chunk_slice)` for each in parallel. Each chunk is
    /// written by exactly one task, so the result is independent of the
    /// pool size.
    ///
    /// # Panics
    ///
    /// Panics if `chunk == 0`.
    pub fn parallel_chunks<T, F>(&self, out: &mut [T], chunk: usize, f: F)
    where
        T: Send,
        F: Fn(usize, &mut [T]) + Sync,
    {
        assert!(chunk > 0, "parallel_chunks: chunk must be positive");
        let f = &f;
        let tasks: Vec<Box<dyn FnOnce() + Send + '_>> = out
            .chunks_mut(chunk)
            .enumerate()
            .map(|(i, slice)| Box::new(move || f(i, slice)) as Box<dyn FnOnce() + Send + '_>)
            .collect();
        self.scope_run(tasks);
    }

    /// Like [`ThreadPool::parallel_chunks`] but over two output buffers
    /// split in lockstep: chunk `i` of `a` (length `chunk_a`) and chunk `i`
    /// of `b` (length `chunk_b`) are handed to the same task.
    ///
    /// # Panics
    ///
    /// Panics if either chunk length is zero or the buffers do not split
    /// into the same number of chunks.
    pub fn parallel_chunks_pair<T, U, F>(
        &self,
        a: &mut [T],
        b: &mut [U],
        chunk_a: usize,
        chunk_b: usize,
        f: F,
    ) where
        T: Send,
        U: Send,
        F: Fn(usize, &mut [T], &mut [U]) + Sync,
    {
        assert!(
            chunk_a > 0 && chunk_b > 0,
            "parallel_chunks_pair: chunks must be positive"
        );
        assert_eq!(
            a.len().div_ceil(chunk_a),
            b.len().div_ceil(chunk_b),
            "parallel_chunks_pair: buffers split into different chunk counts"
        );
        let f = &f;
        let tasks: Vec<Box<dyn FnOnce() + Send + '_>> = a
            .chunks_mut(chunk_a)
            .zip(b.chunks_mut(chunk_b))
            .enumerate()
            .map(|(i, (sa, sb))| Box::new(move || f(i, sa, sb)) as Box<dyn FnOnce() + Send + '_>)
            .collect();
        self.scope_run(tasks);
    }

    /// Maps `f` over `items` in parallel, preserving order. Chunking uses
    /// [`det_chunk_len`], so the work split is pool-size independent.
    pub fn parallel_map<T, R, F>(&self, items: Vec<T>, f: F) -> Vec<R>
    where
        T: Send,
        R: Send,
        F: Fn(T) -> R + Sync,
    {
        let n = items.len();
        let mut out: Vec<Option<R>> = Vec::with_capacity(n);
        out.resize_with(n, || None);
        let chunk = det_chunk_len(n);
        // Pair each input with its output slot; chunks own disjoint slots.
        let mut slots: Vec<(Option<T>, &mut Option<R>)> =
            items.into_iter().map(Some).zip(out.iter_mut()).collect();
        let f = &f;
        let tasks: Vec<Box<dyn FnOnce() + Send + '_>> = slots
            .chunks_mut(chunk)
            .map(|chunk_slots| {
                Box::new(move || {
                    for (item, slot) in chunk_slots.iter_mut() {
                        **slot = Some(f(item.take().expect("unconsumed input")));
                    }
                }) as Box<dyn FnOnce() + Send + '_>
            })
            .collect();
        self.scope_run(tasks);
        drop(slots);
        out.into_iter().map(|r| r.expect("mapped slot")).collect()
    }
}

impl Drop for ThreadPool {
    fn drop(&mut self) {
        {
            let mut q = self.shared.queue.lock().unwrap();
            q.shutdown = true;
        }
        self.shared.ready.notify_all();
        for w in self.workers.drain(..) {
            let _ = w.join();
        }
    }
}

static GLOBAL: OnceLock<Arc<ThreadPool>> = OnceLock::new();

thread_local! {
    static OVERRIDE: std::cell::RefCell<Vec<Arc<ThreadPool>>> =
        const { std::cell::RefCell::new(Vec::new()) };
}

/// The active pool for the calling thread: the innermost
/// [`with_threads`] override if one is installed, otherwise the global
/// pool sized from [`THREADS_ENV`] (default: available parallelism).
pub fn pool() -> Arc<ThreadPool> {
    if let Some(p) = OVERRIDE.with(|o| o.borrow().last().cloned()) {
        return p;
    }
    Arc::clone(GLOBAL.get_or_init(|| {
        let size = std::env::var(THREADS_ENV)
            .ok()
            .and_then(|v| threads_from_str(&v))
            .unwrap_or_else(default_threads);
        Arc::new(ThreadPool::new(size))
    }))
}

/// Runs `f` with the calling thread's active pool replaced by a fresh pool
/// of `threads` total threads — the hook the thread-count-invariance tests
/// use to sweep `ADAGP_THREADS` values without touching the environment.
/// Overrides nest; the pool is torn down (workers joined) on exit.
pub fn with_threads<R>(threads: usize, f: impl FnOnce() -> R) -> R {
    struct Guard;
    impl Drop for Guard {
        fn drop(&mut self) {
            OVERRIDE.with(|o| {
                o.borrow_mut().pop();
            });
        }
    }
    OVERRIDE.with(|o| o.borrow_mut().push(Arc::new(ThreadPool::new(threads))));
    let _guard = Guard;
    f()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn threads_env_parsing() {
        assert_eq!(threads_from_str("4"), Some(4));
        assert_eq!(threads_from_str(" 7 "), Some(7));
        assert_eq!(threads_from_str("0"), None);
        assert_eq!(threads_from_str("many"), None);
        assert_eq!(threads_from_str(""), None);
    }

    #[test]
    fn det_chunk_len_is_pool_independent() {
        // Pure function of the item count; spot-check the contract.
        for items in [1usize, 31, 32, 33, 1000, 4096] {
            let c = det_chunk_len(items);
            assert!(c >= 1);
            assert!(items.div_ceil(c) <= MAX_CHUNKS);
        }
    }

    #[test]
    fn single_thread_pool_runs_inline() {
        let p = ThreadPool::new(1);
        let mut out = vec![0usize; 10];
        p.parallel_chunks(&mut out, 3, |i, s| {
            for (j, v) in s.iter_mut().enumerate() {
                *v = i * 3 + j;
            }
        });
        assert_eq!(out, (0..10).collect::<Vec<_>>());
    }

    #[test]
    fn parallel_map_preserves_order() {
        let p = ThreadPool::new(4);
        let out = p.parallel_map((0..100).collect::<Vec<usize>>(), |x| x * 2);
        assert_eq!(out, (0..100).map(|x| x * 2).collect::<Vec<_>>());
    }

    #[test]
    fn pair_chunking_validates_counts() {
        let p = ThreadPool::new(2);
        let mut a = vec![0u32; 12];
        let mut b = vec![0u64; 4];
        // 12/3 == 4/1 chunks: ok.
        p.parallel_chunks_pair(&mut a, &mut b, 3, 1, |i, sa, sb| {
            sa.fill(i as u32);
            sb.fill(i as u64);
        });
        assert_eq!(b, vec![0, 1, 2, 3]);
        assert_eq!(a[3..6], [1, 1, 1]);
    }

    #[test]
    #[should_panic(expected = "different chunk counts")]
    fn pair_chunking_rejects_mismatch() {
        let p = ThreadPool::new(1);
        let mut a = vec![0u32; 10];
        let mut b = vec![0u32; 3];
        p.parallel_chunks_pair(&mut a, &mut b, 3, 1, |_, _, _| {});
    }

    #[test]
    fn task_panic_propagates() {
        let p = ThreadPool::new(3);
        let result = std::panic::catch_unwind(AssertUnwindSafe(|| {
            p.parallel_for(8, 1, |r| {
                if r.start == 5 {
                    panic!("boom in chunk");
                }
            });
        }));
        assert!(result.is_err());
        // The pool must stay usable after a panic.
        let mut out = vec![0u8; 4];
        p.parallel_chunks(&mut out, 1, |_, s| s.fill(7));
        assert_eq!(out, vec![7; 4]);
    }

    #[test]
    fn nested_scopes_do_not_deadlock() {
        let p = Arc::new(ThreadPool::new(3));
        let mut out = vec![0usize; 6];
        let inner_pool = Arc::clone(&p);
        p.parallel_chunks(&mut out, 2, |i, s| {
            let mut local = vec![0usize; 4];
            inner_pool.parallel_chunks(&mut local, 1, |j, t| t.fill(j));
            let sum: usize = local.iter().sum();
            for (j, v) in s.iter_mut().enumerate() {
                *v = i * 10 + j + sum; // sum == 6
            }
        });
        assert_eq!(out, vec![6, 7, 16, 17, 26, 27]);
    }

    #[test]
    fn with_threads_overrides_and_restores() {
        let outer = pool().size();
        with_threads(2, || {
            assert_eq!(pool().size(), 2);
            with_threads(5, || assert_eq!(pool().size(), 5));
            assert_eq!(pool().size(), 2);
        });
        assert_eq!(pool().size(), outer);
    }
}
