//! # adagp-runtime
//!
//! The shared parallel runtime of the ADA-GP reproduction: a persistent
//! thread pool with **deterministic** data-parallel helpers, a bounded
//! blocking queue for producer/consumer pipelining, and per-stage busy/idle
//! instrumentation.
//!
//! ADA-GP's speed-up comes from overlapping predictor work with the forward
//! pass (§3.4 of the paper). Reproducing that on a CPU needs two things this
//! crate provides: parallel tensor kernels (built on [`ThreadPool`]) and a
//! pipelined training loop (built on [`BoundedQueue`] + [`WaitGroup`]).
//!
//! ## Determinism contract
//!
//! Every `parallel_*` helper splits work at **fixed chunk boundaries**
//! derived only from the problem size ([`det_chunk_len`]), and each chunk
//! writes exactly one disjoint output slice. Kernels built on these helpers
//! keep the per-element floating-point operation order of their scalar
//! reference, so results are **bit-identical for every thread count** —
//! `ADAGP_THREADS=1` and `ADAGP_THREADS=7` produce the same bytes.
//!
//! ## Pool sizing
//!
//! The global pool ([`pool`]) is created on first use with
//! `ADAGP_THREADS` total threads (default: available parallelism). The
//! calling thread participates in every parallel region, so a pool of size
//! `k` spawns `k - 1` workers and `ADAGP_THREADS=1` is exactly the serial
//! scalar path. Tests sweep thread counts with [`with_threads`].
//!
//! ```
//! use adagp_runtime::{det_chunk_len, pool};
//! let mut out = vec![0.0f32; 1000];
//! let chunk = det_chunk_len(out.len());
//! pool().parallel_chunks(&mut out, chunk, |i, slice| {
//!     for (j, v) in slice.iter_mut().enumerate() {
//!         *v = (i * chunk + j) as f32;
//!     }
//! });
//! assert_eq!(out[999], 999.0);
//! ```

pub mod pool;
pub mod queue;
pub mod stats;

pub use pool::{det_chunk_len, pool, with_threads, ThreadPool, THREADS_ENV};
pub use queue::{BoundedQueue, TryPushError, WaitGroup};
pub use stats::{PipelineStats, Stage, StageReport};
