//! Table 3 experiment: YOLO-style detector on the PascalVOC stand-in, BP
//! vs ADA-GP-Efficient/MAX.
//!
//! The cycle columns come from the accelerator model (both ADA-GP designs
//! run the same algorithm, so their accuracy is identical and only cycles
//! differ — exactly the structure of the paper's Table 3).

use adagp_core::{AdaGp, AdaGpConfig, Phase, ScheduleConfig};
use adagp_nn::containers::Sequential;
use adagp_nn::data::DetectionDataset;
use adagp_nn::metrics::mean_average_precision;
use adagp_nn::models::{yolo_v3_tiny, ModelConfig, YoloHead};
use adagp_nn::module::{ForwardCtx, Module};
use adagp_nn::optim::{Optimizer, Sgd};
use adagp_tensor::Prng;

/// One arm's detection metrics.
#[derive(Debug, Clone, Copy)]
pub struct DetectionArm {
    /// Responsible-cell classification accuracy, percent.
    pub class_acc: f32,
    /// Mean average precision at IoU 0.5.
    pub test_map: f32,
}

/// Budget of the detection experiment.
#[derive(Debug, Clone, Copy)]
pub struct DetectionBudget {
    /// Training epochs.
    pub epochs: usize,
    /// ADA-GP warm-up epochs.
    pub warmup: usize,
    /// Batches per epoch.
    pub batches_per_epoch: usize,
    /// Images per batch.
    pub batch: usize,
    /// Number of object classes.
    pub classes: usize,
    /// Image side length.
    pub size: usize,
}

impl DetectionBudget {
    /// Quick harness budget: 8 classes at 32².
    pub fn quick() -> Self {
        DetectionBudget {
            epochs: 6,
            warmup: 2,
            batches_per_epoch: 12,
            batch: 8,
            classes: 8,
            size: 32,
        }
    }

    /// Full budget: 20 VOC classes.
    pub fn full() -> Self {
        DetectionBudget {
            epochs: 12,
            warmup: 3,
            batches_per_epoch: 24,
            batch: 8,
            classes: 20,
            size: 32,
        }
    }
}

fn evaluate(
    model: &mut Sequential,
    head: &YoloHead,
    data: &DetectionDataset,
    batches: usize,
    batch: usize,
) -> DetectionArm {
    let mut dets = Vec::new();
    let mut gts = Vec::new();
    let mut acc_sum = 0.0f32;
    for bi in 0..batches {
        let (x, labels) = data.test_batch(bi, batch);
        let raw = model.forward(&x, &mut ForwardCtx::eval());
        acc_sum += head.class_accuracy(&raw, &labels);
        let mut batch_dets = head.decode(&raw);
        // Re-index detections into the global image numbering.
        for d in &mut batch_dets {
            d.image += bi * batch;
        }
        dets.extend(batch_dets);
        gts.extend(labels);
    }
    DetectionArm {
        class_acc: acc_sum / batches.max(1) as f32,
        test_map: mean_average_precision(&dets, &gts, 0.5, head.classes),
    }
}

/// Runs both arms of the Table 3 experiment; returns `(bp, adagp)`.
pub fn run_detection_experiment(
    budget: &DetectionBudget,
    seed: u64,
) -> (DetectionArm, DetectionArm) {
    let data = DetectionDataset::new(budget.classes, budget.size, 256, 64, seed);
    let head = YoloHead::new(budget.classes);
    let cfg = ModelConfig {
        width: 0.25,
        depth_div: 1,
        classes: budget.classes,
    };
    let eval_batches = 4;

    // --- BP arm.
    let mut rng = Prng::seed_from_u64(seed);
    let mut model = yolo_v3_tiny(&cfg, budget.classes, &mut rng);
    let mut opt = Sgd::new(0.005, 0.9);
    for _ in 0..budget.epochs {
        for b in 0..budget.batches_per_epoch {
            let (x, labels) = data.train_batch(b, budget.batch);
            let raw = model.forward(&x, &mut ForwardCtx::train());
            let (_, grad) = head.loss(&raw, &labels);
            model.backward(&grad);
            opt.step(&mut model);
        }
    }
    let bp = evaluate(&mut model, &head, &data, eval_batches, budget.batch);

    // --- ADA-GP arm.
    let mut rng = Prng::seed_from_u64(seed);
    let mut model = yolo_v3_tiny(&cfg, budget.classes, &mut rng);
    let adagp_cfg = AdaGpConfig {
        schedule: ScheduleConfig {
            warmup_epochs: budget.warmup,
            epochs_per_stage: 1,
            ..Default::default()
        },
        track_metrics: false,
        ..Default::default()
    };
    let mut adagp = AdaGp::new(adagp_cfg, &mut model, &mut rng);
    let mut opt = Sgd::new(0.005, 0.9);
    for _ in 0..budget.epochs {
        for b in 0..budget.batches_per_epoch {
            let (x, labels) = data.train_batch(b, budget.batch);
            let phase = adagp.controller_mut().next_phase();
            match phase {
                Phase::WarmUp | Phase::BP => {
                    let raw = model.forward(&x, &mut ForwardCtx::train_recording());
                    let (_, grad) = head.loss(&raw, &labels);
                    model.backward(&grad);
                    adagp.train_predictor_from_sites(&mut model);
                    opt.step(&mut model);
                }
                Phase::GP => {
                    model.forward(&x, &mut ForwardCtx::train_recording());
                    adagp.apply_predicted_gradients(&mut model);
                    opt.step(&mut model);
                }
            }
        }
        adagp.controller_mut().end_epoch();
    }
    let gp = evaluate(&mut model, &head, &data, eval_batches, budget.batch);
    (bp, gp)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn detection_experiment_produces_valid_metrics() {
        let budget = DetectionBudget {
            epochs: 2,
            warmup: 1,
            batches_per_epoch: 4,
            batch: 4,
            classes: 4,
            size: 16,
        };
        let (bp, gp) = run_detection_experiment(&budget, 3);
        for arm in [bp, gp] {
            assert!((0.0..=100.0).contains(&arm.class_acc));
            assert!((0.0..=1.0).contains(&arm.test_map));
        }
    }
}
