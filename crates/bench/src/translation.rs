//! Table 2 experiment: Transformer on the Multi30k stand-in, BP vs
//! ADA-GP.
//!
//! The transformer has a token-id interface, so the ADA-GP arm uses the
//! low-level hooks (`train_predictor_from_sites` /
//! `apply_predicted_gradients`) rather than the classification
//! convenience wrapper.

use adagp_core::{AdaGp, AdaGpConfig, Phase, ScheduleConfig};
use adagp_nn::data::{TranslationDataset, BOS};
use adagp_nn::metrics::bleu;
use adagp_nn::models::{Transformer, TransformerConfig};
use adagp_nn::module::ForwardCtx;
use adagp_nn::optim::{Adam, Optimizer};
use adagp_tensor::softmax::cross_entropy;
use adagp_tensor::Prng;

/// Table 2 row: one training arm's final metrics.
#[derive(Debug, Clone, Copy)]
pub struct TransformerArm {
    /// Validation token accuracy, percent.
    pub val_acc: f32,
    /// Final validation cross-entropy loss.
    pub loss: f32,
    /// BLEU-4 score of greedy decodes.
    pub bleu: f32,
}

/// Budget for the transformer experiment.
#[derive(Debug, Clone, Copy)]
pub struct TransformerBudget {
    /// Training epochs.
    pub epochs: usize,
    /// Warm-up epochs for ADA-GP.
    pub warmup: usize,
    /// Batches per epoch.
    pub batches_per_epoch: usize,
    /// Sentence pairs per batch.
    pub batch: usize,
}

impl TransformerBudget {
    /// Quick harness budget.
    pub fn quick() -> Self {
        TransformerBudget {
            epochs: 6,
            warmup: 2,
            batches_per_epoch: 12,
            batch: 8,
        }
    }

    /// Full budget (`ADAGP_FULL=1`).
    pub fn full() -> Self {
        TransformerBudget {
            epochs: 16,
            warmup: 3,
            batches_per_epoch: 24,
            batch: 16,
        }
    }
}

fn teacher_inputs(tgt: &[Vec<usize>]) -> Vec<Vec<usize>> {
    tgt.iter()
        .map(|row| {
            let mut v = Vec::with_capacity(row.len());
            v.push(BOS);
            v.extend_from_slice(&row[..row.len() - 1]);
            v
        })
        .collect()
}

fn flat_targets(tgt: &[Vec<usize>]) -> Vec<usize> {
    tgt.iter().flat_map(|r| r.iter().copied()).collect()
}

fn evaluate(
    model: &mut Transformer,
    data: &TranslationDataset,
    batches: usize,
    batch: usize,
) -> TransformerArm {
    let mut correct = 0usize;
    let mut total = 0usize;
    let mut loss_sum = 0.0f32;
    let mut hyps = Vec::new();
    let mut refs = Vec::new();
    for bi in 0..batches {
        let mut srcs = Vec::new();
        let mut tgts = Vec::new();
        for i in 0..batch {
            let (s, t) = data.test_pair(bi * batch + i);
            srcs.push(s);
            tgts.push(t);
        }
        let tgt_in = teacher_inputs(&tgts);
        let targets = flat_targets(&tgts);
        let logits = model.forward_with_ctx(&srcs, &tgt_in, &mut ForwardCtx::eval());
        let (loss, _) = cross_entropy(&logits, &targets);
        loss_sum += loss;
        let v = data.vocab();
        for (i, &t) in targets.iter().enumerate() {
            let row = &logits.data()[i * v..(i + 1) * v];
            let pred = row
                .iter()
                .enumerate()
                .max_by(|a, b| a.1.total_cmp(b.1))
                .map(|(j, _)| j)
                .unwrap_or(0);
            if pred == t {
                correct += 1;
            }
            total += 1;
        }
        // Greedy decodes for BLEU.
        let decoded = model.greedy_decode(&srcs, BOS, data.sentence_len());
        hyps.extend(decoded);
        refs.extend(tgts);
    }
    TransformerArm {
        val_acc: 100.0 * correct as f32 / total.max(1) as f32,
        loss: loss_sum / batches.max(1) as f32,
        bleu: bleu(&hyps, &refs),
    }
}

/// Runs both arms of the Table 2 experiment; returns `(bp, adagp)`.
pub fn run_transformer_experiment(
    budget: &TransformerBudget,
    seed: u64,
) -> (TransformerArm, TransformerArm) {
    let data = TranslationDataset::multi30k_like(seed);
    let cfg = TransformerConfig::paper_like(data.vocab());
    let eval_batches = 4;

    // --- BP arm.
    let mut rng = Prng::seed_from_u64(seed);
    let mut model = Transformer::new(cfg, &mut rng);
    let mut opt = Adam::new(2e-3);
    for _ in 0..budget.epochs {
        for b in 0..budget.batches_per_epoch {
            let (src, tgt) = data.train_batch(b, budget.batch);
            let tgt_in = teacher_inputs(&tgt);
            let targets = flat_targets(&tgt);
            let logits = model.forward_train(&src, &tgt_in);
            let (_, dl) = cross_entropy(&logits, &targets);
            model.backward(&dl);
            opt.step(&mut model);
        }
    }
    let bp = evaluate(&mut model, &data, eval_batches, budget.batch);

    // --- ADA-GP arm.
    let mut rng = Prng::seed_from_u64(seed);
    let mut model = Transformer::new(cfg, &mut rng);
    let adagp_cfg = AdaGpConfig {
        schedule: ScheduleConfig {
            warmup_epochs: budget.warmup,
            epochs_per_stage: 1,
            ..Default::default()
        },
        track_metrics: false,
        ..Default::default()
    };
    let mut adagp = AdaGp::new(adagp_cfg, &mut model, &mut rng);
    let mut opt = Adam::new(2e-3);
    for _ in 0..budget.epochs {
        for b in 0..budget.batches_per_epoch {
            let (src, tgt) = data.train_batch(b, budget.batch);
            let tgt_in = teacher_inputs(&tgt);
            let targets = flat_targets(&tgt);
            let phase = adagp.controller_mut().next_phase();
            match phase {
                Phase::WarmUp | Phase::BP => {
                    let logits =
                        model.forward_with_ctx(&src, &tgt_in, &mut ForwardCtx::train_recording());
                    let (_, dl) = cross_entropy(&logits, &targets);
                    model.backward(&dl);
                    adagp.train_predictor_from_sites(&mut model);
                    opt.step(&mut model);
                }
                Phase::GP => {
                    model.forward_with_ctx(&src, &tgt_in, &mut ForwardCtx::train_recording());
                    adagp.apply_predicted_gradients(&mut model);
                    opt.step(&mut model);
                }
            }
        }
        adagp.controller_mut().end_epoch();
    }
    let gp = evaluate(&mut model, &data, eval_batches, budget.batch);
    (bp, gp)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn transformer_experiment_produces_finite_metrics() {
        let budget = TransformerBudget {
            epochs: 2,
            warmup: 1,
            batches_per_epoch: 4,
            batch: 4,
        };
        let (bp, gp) = run_transformer_experiment(&budget, 5);
        for arm in [bp, gp] {
            assert!(arm.val_acc.is_finite() && (0.0..=100.0).contains(&arm.val_acc));
            assert!(arm.loss.is_finite() && arm.loss > 0.0);
            assert!(arm.bleu.is_finite() && (0.0..=100.0).contains(&arm.bleu));
        }
    }

    #[test]
    fn teacher_inputs_shift_right() {
        let tgt = vec![vec![5, 6, 7]];
        let ti = teacher_inputs(&tgt);
        assert_eq!(ti[0], vec![BOS, 5, 6]);
    }
}
