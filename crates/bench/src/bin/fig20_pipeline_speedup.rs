//! Figure 20: ADA-GP speed-up over GPipe, DAPPLE and Chimera multi-device
//! pipelines (ImageNet-scale models, 4 devices × 4 micro-batches).

use adagp_bench::report::{f3, render_table};
use adagp_bench::speedup_tables::pipeline_speedup_rows;
use adagp_pipeline::PipelineScheme;

fn main() {
    for scheme in PipelineScheme::all() {
        let rows: Vec<Vec<String>> = pipeline_speedup_rows(scheme)
            .iter()
            .map(|(m, s)| vec![m.clone(), f3(*s)])
            .collect();
        println!(
            "{}",
            render_table(
                &format!("Figure 20: ADA-GP speed-up over {}", scheme.name()),
                &["Model", "Speed-up"],
                &rows,
            )
        );
    }
}
