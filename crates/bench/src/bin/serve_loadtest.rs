//! Load-test harness for `adagp-serve`: many client threads submit
//! overlapping random sub-grids and every reply is checked against
//! direct local evaluation, bit for bit.
//!
//! ```text
//! serve_loadtest [--clients n] [--grids n] [--seed n]
//!                [--workers n] [--queue-depth n] [--window n]
//!                [--addr host:port]
//! ```
//!
//! By default the harness starts an in-process server on an ephemeral
//! port, so a single invocation is a full closed-loop check:
//!
//! 1. Pre-evaluate a small **cell universe** locally (`evaluate_cell`).
//! 2. Launch `--clients` threads; each submits seeded-random sub-grids
//!    of that universe (heavily overlapping across clients).
//! 3. Every streamed cell must be **bit-identical** to the local
//!    evaluation; every done line must account for its cells.
//! 4. The scraped `/metrics` must satisfy the counter invariants and
//!    show **exactly one evaluation per distinct cell requested** —
//!    coalescing and memoization, proven end-to-end.
//! 5. Graceful shutdown flushes the cache; the snapshot must reload
//!    byte-stably.
//!
//! With `--addr` the harness drives an external server instead: the
//! bit-exactness checks still run (the universe is evaluated locally),
//! the cold-cache metrics and shutdown checks are skipped. Exit code 0
//! on a clean PASS, 1 on any mismatch, 2 on usage errors.

use adagp_accel::{AdaGpDesign, Dataflow};
use adagp_nn::models::CnnModel;
use adagp_obs as obs;
use adagp_serve::wire::grid_to_value;
use adagp_serve::{
    check_invariants, fetch_metrics, http_request, server, submit_grid, CellCache, ServerConfig,
};
use adagp_sweep::grid::{DatasetScale, GridSpec, PhaseSchedule};
use adagp_sweep::{evaluate_cell, metrics_to_array};
use adagp_tensor::Prng;
use std::collections::{HashMap, HashSet};
use std::net::SocketAddr;
use std::process::ExitCode;
use std::time::Instant;

const USAGE: &str = "\
Usage:
  serve_loadtest [--clients n]      client threads (default 8)
                 [--grids n]        total grid submissions (default 96)
                 [--seed n]         base PRNG seed (default 7)
                 [--workers n]      server connection workers (default 8)
                 [--queue-depth n]  server accept queue (default 64)
                 [--window n]       server /grid streaming window
                 [--addr host:port] drive an external server instead of
                                    an in-process one (skips the
                                    cold-metrics and shutdown checks)

Exit codes: 0 pass, 1 mismatch, 2 usage error
";

/// The axes the random sub-grids draw from. Small enough to
/// pre-evaluate in seconds, rich enough to cover the bandwidth axis and
/// to make cross-client sharing overwhelming.
struct Universe {
    models: Vec<CnnModel>,
    designs: Vec<AdaGpDesign>,
    schedules: Vec<PhaseSchedule>,
    bandwidths: Vec<Option<u64>>,
}

impl Universe {
    fn new() -> Self {
        Universe {
            models: vec![CnnModel::Vgg13, CnnModel::ResNet50],
            designs: vec![AdaGpDesign::Efficient, AdaGpDesign::Max],
            schedules: vec![PhaseSchedule::Paper, PhaseSchedule::SteadyOnly],
            bandwidths: vec![None, Some(64)],
        }
    }

    fn full_grid(&self, name: &str) -> GridSpec {
        GridSpec {
            name: name.to_string(),
            models: self.models.clone(),
            datasets: vec![DatasetScale::Cifar10],
            designs: self.designs.clone(),
            dataflows: vec![Dataflow::WeightStationary],
            schedules: self.schedules.clone(),
            bandwidths: self.bandwidths.clone(),
            buffers: vec![None],
        }
    }

    /// A random non-empty sub-grid (each axis keeps each value with
    /// probability ½, and at least one).
    fn random_subgrid(&self, rng: &mut Prng, name: &str) -> GridSpec {
        fn subset<T: Clone>(rng: &mut Prng, all: &[T]) -> Vec<T> {
            let picked: Vec<T> = all
                .iter()
                .filter(|_| rng.next_u64() & 1 == 0)
                .cloned()
                .collect();
            if picked.is_empty() {
                vec![all[rng.below(all.len())].clone()]
            } else {
                picked
            }
        }
        let mut grid = self.full_grid(name);
        grid.models = subset(rng, &self.models);
        grid.designs = subset(rng, &self.designs);
        grid.schedules = subset(rng, &self.schedules);
        grid.bandwidths = subset(rng, &self.bandwidths);
        grid
    }
}

struct Options {
    clients: usize,
    grids: usize,
    seed: u64,
    workers: usize,
    queue_depth: usize,
    window: usize,
    addr: Option<SocketAddr>,
}

impl Default for Options {
    fn default() -> Self {
        Options {
            clients: 8,
            grids: 96,
            seed: 7,
            workers: 8,
            queue_depth: 64,
            window: 8,
            addr: None,
        }
    }
}

/// What one client thread observed.
#[derive(Default)]
struct ClientReport {
    latencies_micros: Vec<u64>,
    cells: u64,
    hits: u64,
    evaluated: u64,
    joined: u64,
    requested_ids: HashSet<String>,
}

fn main() -> ExitCode {
    let opts = match parse_options(&std::env::args().skip(1).collect::<Vec<_>>()) {
        Ok(Some(opts)) => opts,
        Ok(None) => return ExitCode::SUCCESS,
        Err(msg) => {
            eprintln!("serve_loadtest: {msg}");
            return ExitCode::from(2);
        }
    };
    match run(&opts) {
        Ok(()) => {
            println!("loadtest: PASS");
            ExitCode::SUCCESS
        }
        Err(msg) => {
            eprintln!("loadtest: FAIL: {msg}");
            ExitCode::FAILURE
        }
    }
}

fn parse_options(args: &[String]) -> Result<Option<Options>, String> {
    let mut opts = Options::default();
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        if matches!(arg.as_str(), "--help" | "-h") {
            print!("{USAGE}");
            return Ok(None);
        }
        let value = it
            .next()
            .ok_or_else(|| format!("{arg} needs a value\n{USAGE}"))?;
        let count = || {
            value
                .parse::<usize>()
                .map_err(|_| format!("{arg}: `{value}` is not a count\n{USAGE}"))
        };
        match arg.as_str() {
            "--clients" => opts.clients = count()?.max(1),
            "--grids" => opts.grids = count()?.max(1),
            "--seed" => opts.seed = count()? as u64,
            "--workers" => opts.workers = count()?.max(1),
            "--queue-depth" => opts.queue_depth = count()?.max(1),
            "--window" => opts.window = count()?.max(1),
            "--addr" => {
                opts.addr = Some(
                    value
                        .parse()
                        .map_err(|_| format!("--addr: `{value}` is not host:port\n{USAGE}"))?,
                );
            }
            other => return Err(format!("unknown argument `{other}`\n{USAGE}")),
        }
    }
    Ok(Some(opts))
}

fn run(opts: &Options) -> Result<(), String> {
    let universe = Universe::new();
    let full = universe.full_grid("universe");

    // 1. Local ground truth, bit for bit.
    let expected: HashMap<String, Vec<u64>> = full
        .expand()
        .iter()
        .map(|spec| {
            let bits = metrics_to_array(&evaluate_cell(spec))
                .iter()
                .map(|m| m.to_bits())
                .collect();
            (spec.id.clone(), bits)
        })
        .collect();
    println!(
        "loadtest: universe {} cells, {} clients x {} grids (seed {})",
        expected.len(),
        opts.clients,
        opts.grids,
        opts.seed
    );

    // 2. The server under test: in-process unless --addr points away.
    // Span recording on, so the in-process server's `GET /profile` has a
    // real request tree to serve (step 4.5).
    if opts.addr.is_none() {
        obs::set_enabled(true);
    }
    let flush =
        std::env::temp_dir().join(format!("adagp-serve-loadtest-{}.json", std::process::id()));
    let local = match opts.addr {
        Some(_) => None,
        None => Some(server::start(ServerConfig {
            workers: opts.workers,
            queue_depth: opts.queue_depth,
            grid_window: opts.window,
            flush_path: Some(flush.clone()),
            ..ServerConfig::default()
        })?),
    };
    let addr = opts
        .addr
        .unwrap_or_else(|| local.as_ref().expect("in-process server").addr());

    // 3. Fan out the clients.
    let started = Instant::now();
    let reports: Vec<Result<ClientReport, String>> = std::thread::scope(|scope| {
        let universe = &universe;
        let expected = &expected;
        let handles: Vec<_> = (0..opts.clients)
            .map(|client| {
                let grids =
                    opts.grids / opts.clients + usize::from(client < opts.grids % opts.clients);
                let seed = opts.seed.wrapping_add(client as u64);
                scope.spawn(move || run_client(addr, client, grids, seed, universe, expected))
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("client thread"))
            .collect()
    });
    let wall = started.elapsed();
    let mut merged = ClientReport::default();
    for report in reports {
        let r = report?;
        merged.latencies_micros.extend(r.latencies_micros);
        merged.cells += r.cells;
        merged.hits += r.hits;
        merged.evaluated += r.evaluated;
        merged.joined += r.joined;
        merged.requested_ids.extend(r.requested_ids);
    }
    merged.latencies_micros.sort_unstable();
    let pct = |p: usize| merged.latencies_micros[(merged.latencies_micros.len() - 1) * p / 100];
    println!(
        "loadtest: {} grids in {:?}: {} cells ({} hits, {} evaluated, {} joined), \
         hit rate {:.1}%, latency p50 {}us p95 {}us max {}us",
        merged.latencies_micros.len(),
        wall,
        merged.cells,
        merged.hits,
        merged.evaluated,
        merged.joined,
        100.0 * merged.hits as f64 / merged.cells as f64,
        pct(50),
        pct(95),
        pct(100),
    );

    // 4. Server-side accounting.
    let metrics = fetch_metrics(addr)?;
    if let Some(why) = check_invariants(&metrics) {
        return Err(format!("metrics inconsistent: {why}"));
    }
    if local.is_some() {
        let distinct = merged.requested_ids.len() as i128;
        if metrics["evaluations"] != distinct {
            return Err(format!(
                "coalescing failed: {} evaluations for {distinct} distinct cells",
                metrics["evaluations"]
            ));
        }
        if metrics["cells_served"] != merged.cells as i128 {
            return Err(format!(
                "served {} cells, clients saw {}",
                metrics["cells_served"], merged.cells
            ));
        }
        println!(
            "loadtest: metrics consistent; {} distinct cells evaluated exactly once \
             ({} overload rejections)",
            distinct, metrics["overload_rejections"]
        );

        // 4.5. The live span-tree profile: non-empty under load, and
        // internally consistent (calls ≥ 1, self ≤ total, children sum ≤
        // parent) — the same validator `obs_check profile` runs.
        let reply = http_request(addr, "GET", "/profile", None)?;
        if reply.status != 200 {
            return Err(format!("/profile answered {}", reply.status));
        }
        let stats = obs::validate_profile(&reply.body)
            .map_err(|e| format!("/profile body invalid: {e}"))?;
        if stats.nodes == 0 {
            return Err("/profile returned an empty span tree under load".to_string());
        }
        println!(
            "loadtest: /profile consistent; {} nodes across {} lanes, {} us total",
            stats.nodes, stats.lanes, stats.total_us
        );

        // 4.6. The live critical-path report: valid `adagp-critpath-v1`
        // in measured mode with at least one lane under load — the same
        // validator `obs_check critpath` runs.
        let reply = http_request(addr, "GET", "/critical", None)?;
        if reply.status != 200 {
            return Err(format!("/critical answered {}", reply.status));
        }
        let crit = obs::validate_critpath(&reply.body)
            .map_err(|e| format!("/critical body invalid: {e}"))?;
        if crit.mode != "measured" || crit.lanes == 0 {
            return Err(format!(
                "/critical returned a degenerate report ({} mode, {} lanes)",
                crit.mode, crit.lanes
            ));
        }
        println!(
            "loadtest: /critical consistent; {} lanes, {} blame rows, makespan {} ns",
            crit.lanes, crit.blame, crit.makespan
        );
    }

    // 5. Graceful shutdown and byte-stable flush (in-process mode only).
    if let Some(handle) = local {
        let flushed = handle.shutdown()?.expect("flush path was configured");
        if flushed as u64 != merged.requested_ids.len() as u64 {
            return Err(format!(
                "flushed {flushed} cells, expected {}",
                merged.requested_ids.len()
            ));
        }
        let bytes = std::fs::read(&flush).map_err(|e| format!("read flush: {e}"))?;
        let reload = CellCache::new();
        reload.warm_load(&flush)?;
        if reload.snapshot_json().into_bytes() != bytes {
            return Err("flushed snapshot did not reload byte-stably".to_string());
        }
        println!("loadtest: graceful shutdown; {flushed}-cell flush reloads byte-stable");
        std::fs::remove_file(&flush).ok();
    }
    Ok(())
}

fn run_client(
    addr: SocketAddr,
    client: usize,
    grids: usize,
    seed: u64,
    universe: &Universe,
    expected: &HashMap<String, Vec<u64>>,
) -> Result<ClientReport, String> {
    let mut rng = Prng::seed_from_u64(seed);
    let mut report = ClientReport::default();
    for i in 0..grids {
        let grid = universe.random_subgrid(&mut rng, &format!("lt-{client}-{i}"));
        let spec_json = serde::json::to_string(&grid_to_value(&grid));
        let sent = Instant::now();
        let response =
            submit_grid(addr, &spec_json).map_err(|e| format!("client {client} grid {i}: {e}"))?;
        report
            .latencies_micros
            .push(sent.elapsed().as_micros() as u64);
        if !response.cell_errors.is_empty() {
            return Err(format!(
                "client {client} grid {i}: cell errors {:?}",
                response.cell_errors
            ));
        }
        let cells = grid.expand();
        if response.announced_cells != cells.len() as u64 || response.cells.len() != cells.len() {
            return Err(format!(
                "client {client} grid {i}: {} cells announced, {} streamed, {} expected",
                response.announced_cells,
                response.cells.len(),
                cells.len()
            ));
        }
        let d = &response.done;
        if d.cells != cells.len() as u64 || d.hits + d.evaluated + d.joined != d.cells {
            return Err(format!(
                "client {client} grid {i}: done line does not add up: {d:?}"
            ));
        }
        report.cells += d.cells;
        report.hits += d.hits;
        report.evaluated += d.evaluated;
        report.joined += d.joined;
        for (spec, line) in cells.iter().zip(&response.cells) {
            if line.id != spec.id {
                return Err(format!(
                    "client {client} grid {i}: cell order drifted ({} != {})",
                    line.id, spec.id
                ));
            }
            let want = &expected[&spec.id];
            let got: Vec<u64> = line.metrics.iter().map(|m| m.to_bits()).collect();
            if &got != want {
                return Err(format!(
                    "client {client} grid {i}: cell {} not bit-identical to direct \
                     evaluation",
                    spec.key()
                ));
            }
            report.requested_ids.insert(spec.id.clone());
        }
    }
    Ok(report)
}
