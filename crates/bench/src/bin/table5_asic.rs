//! Table 5: ASIC area and power of the ADA-GP designs vs the baseline
//! (component model calibrated to the paper's Design Compiler numbers).

use adagp_accel::designs::AdaGpDesign;
use adagp_accel::synthesis::AsicModel;
use adagp_bench::report::render_table;

fn main() {
    let m = AsicModel::default();

    let mut rows = Vec::new();
    let fmt_area = |name: &str, a: adagp_accel::synthesis::AsicArea| {
        vec![
            name.to_string(),
            format!("{:.0}", a.combinational),
            format!("{:.0}", a.buf_inv),
            format!("{:.0}", a.interconnect),
            format!("{:.0}", a.total_cell),
            format!("{:.0}", a.total()),
        ]
    };
    rows.push(fmt_area("Baseline", m.baseline_area()));
    for d in AdaGpDesign::all() {
        rows.push(fmt_area(d.name(), m.design_area(d)));
    }
    println!(
        "{}",
        render_table(
            "Table 5a: ASIC area (um^2)",
            &[
                "Design",
                "Combinational",
                "Buf/Inv",
                "Net Intercon.",
                "Total Cell",
                "Total"
            ],
            &rows,
        )
    );

    let mut prows = Vec::new();
    let fmt_power = |name: &str, p: adagp_accel::synthesis::AsicPower| {
        vec![
            name.to_string(),
            format!("{:.2e}", p.internal),
            format!("{:.2e}", p.switching),
            format!("{:.2e}", p.leakage),
            format!("{:.2e}", p.total()),
        ]
    };
    prows.push(fmt_power("Baseline", m.baseline_power()));
    for d in AdaGpDesign::all() {
        prows.push(fmt_power(d.name(), m.design_power(d)));
    }
    println!(
        "{}",
        render_table(
            "Table 5b: ASIC power (uW)",
            &["Design", "Internal", "Switching", "Leakage", "Total"],
            &prows,
        )
    );
    for d in AdaGpDesign::all() {
        println!(
            "{} area overhead: {:.1}%",
            d.name(),
            m.area_overhead_percent(d)
        );
    }
}
