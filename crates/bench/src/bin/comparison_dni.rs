//! Related-work comparison (§2): DNI-style synthetic gradients vs ADA-GP.
//!
//! DNI applies synthetic gradients but never skips backprop, so it cannot
//! speed up training; ADA-GP skips backprop on GP batches. This harness
//! trains both on the same task and prints accuracy plus the §3.7 step
//! costs.

use adagp_bench::report::render_table;
use adagp_core::dni::{dni_vs_adagp_steps, DniTrainer};
use adagp_core::trainer::evaluate_accuracy;
use adagp_core::{AdaGp, AdaGpConfig, PredictorConfig, ScheduleConfig};
use adagp_nn::data::{DatasetSpec, VisionDataset};
use adagp_nn::models::{build_cnn, CnnModel, ModelConfig};
use adagp_nn::optim::Sgd;
use adagp_tensor::Prng;

fn main() {
    let spec = DatasetSpec {
        classes: 10,
        channels: 3,
        size: 12,
        train_len: 160,
        test_len: 64,
    };
    let ds = VisionDataset::new(spec, 42);
    let model_cfg = ModelConfig {
        width: 0.0625,
        depth_div: 4,
        classes: spec.classes,
    };
    let (epochs, batches, batch) = (8, 16, 8);

    // DNI arm.
    let mut rng = Prng::seed_from_u64(1);
    let mut dni_model = build_cnn(CnnModel::Vgg13, &model_cfg, 3, spec.size, &mut rng);
    let pred_cfg = PredictorConfig {
        lr: 1e-3,
        ..Default::default()
    };
    let mut dni = DniTrainer::new(pred_cfg, &mut dni_model, &mut rng);
    let mut opt = Sgd::new(0.01, 0.9);
    for _ in 0..epochs {
        for b in 0..batches {
            let (x, y) = ds.train_batch(b, batch);
            dni.train_batch(&mut dni_model, &mut opt, &x, &y);
        }
    }
    let dni_acc = evaluate_accuracy(&mut dni_model, (0..4).map(|b| ds.test_batch(b, batch)));

    // ADA-GP arm (same seed).
    let mut rng = Prng::seed_from_u64(1);
    let mut gp_model = build_cnn(CnnModel::Vgg13, &model_cfg, 3, spec.size, &mut rng);
    let mut cfg = AdaGpConfig {
        schedule: ScheduleConfig {
            warmup_epochs: 2,
            epochs_per_stage: 1,
            ..Default::default()
        },
        track_metrics: false,
        ..Default::default()
    };
    cfg.predictor.lr = 1e-3;
    let mut adagp = AdaGp::new(cfg, &mut gp_model, &mut rng);
    let mut opt = Sgd::new(0.01, 0.9);
    for _ in 0..epochs {
        for b in 0..batches {
            let (x, y) = ds.train_batch(b, batch);
            adagp.train_batch(&mut gp_model, &mut opt, &x, &y);
        }
        adagp.controller_mut().end_epoch();
    }
    let gp_acc = evaluate_accuracy(&mut gp_model, (0..4).map(|b| ds.test_batch(b, batch)));
    let (_, _, gp_batches) = adagp.controller_mut().phase_counts();

    let (dni_steps, adagp_gp_steps, baseline_steps) = dni_vs_adagp_steps(13, 0.1);
    let rows = vec![
        vec![
            "DNI-style".to_string(),
            format!("{dni_acc:.2}%"),
            "0".to_string(),
            format!("{dni_steps:.1} (>= baseline {baseline_steps:.0})"),
        ],
        vec![
            "ADA-GP".to_string(),
            format!("{gp_acc:.2}%"),
            gp_batches.to_string(),
            format!("{adagp_gp_steps:.1} per GP batch"),
        ],
    ];
    println!(
        "{}",
        render_table(
            "Related work: DNI-style synthetic gradients vs ADA-GP (VGG13, C10 stand-in)",
            &[
                "Scheme",
                "Accuracy",
                "Backward passes skipped",
                "Steps/batch (13-layer model)"
            ],
            &rows,
        )
    );
    println!("DNI never skips backprop (paper §2), so it cannot accelerate training;");
    println!("ADA-GP's speed-up comes from eliminating the BW pass on GP batches.");
}
