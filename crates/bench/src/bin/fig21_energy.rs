//! Figure 21: off-chip memory energy — baseline vs ADA-GP-Efficient vs
//! ADA-GP-MAX, plus the average saving.

use adagp_bench::report::render_table;
use adagp_bench::speedup_tables::energy_rows;

fn main() {
    let rows = energy_rows();
    let table: Vec<Vec<String>> = rows
        .iter()
        .map(|(m, b, e, x)| {
            vec![
                m.clone(),
                format!("{b:.3e}"),
                format!("{e:.3e}"),
                format!("{x:.3e}"),
                format!("{:.1}%", 100.0 * (1.0 - e / b)),
            ]
        })
        .collect();
    println!(
        "{}",
        render_table(
            "Figure 21: training memory energy (J)",
            &[
                "Model",
                "Baseline-WS",
                "ADA-GP-Efficient",
                "ADA-GP-MAX",
                "Saving"
            ],
            &table,
        )
    );
    let mean_saving: f64 = rows
        .iter()
        .map(|(_, b, e, _)| 100.0 * (1.0 - e / b))
        .sum::<f64>()
        / rows.len() as f64;
    println!("Average energy saving: {mean_saving:.1}% (paper: 34%)");
}
