//! CI helper: validate a Chrome-trace dump, a `/metrics` scrape, a
//! span-tree profile dump, or a `BENCH_*.json` snapshot from the command
//! line, with the exact same checkers the test suites use
//! (`adagp_obs::validate_chrome_trace`, `adagp_obs::validate_profile`,
//! `adagp_obs::bench::Snapshot`, `adagp_serve::parse_metrics` +
//! `check_invariants`) — no python in the loop.
//!
//! ```text
//! obs_check trace <path>
//! obs_check metrics <path> [--histogram <family>]...
//! obs_check profile <path>
//! obs_check bench <path>...
//! obs_check critpath <path>
//! ```
//!
//! `trace` fails on unparseable JSON, a missing `traceEvents` array,
//! malformed span events, partially overlapping siblings on one lane, or
//! an empty trace. `metrics` fails on malformed lines or violated
//! counter/histogram invariants; each `--histogram <family>` additionally
//! requires that family to be present with a nonzero `_count`. `profile`
//! accepts either the `adagp-profile-v1` JSON tree or a collapsed-stack
//! dump, enforces the tree invariants (calls ≥ 1, self ≤ total, children
//! sum ≤ parent), and fails on an empty profile. `bench` parses each
//! path as an `adagp-bench-snapshot-v1` file and runs its sanity check
//! (non-empty workloads, `min ≤ median`, `mad ≤ median`). `critpath`
//! validates an `adagp-critpath-v1` report (`adagp_obs::validate_critpath`:
//! chain contiguity, `Σ blame == makespan` in sim mode, exact per-lane
//! busy/queue/idle accounting in measured mode) and additionally rejects
//! degenerate reports with neither chain segments nor measured lanes.

use std::process::ExitCode;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match run(&args) {
        Ok(msg) => {
            println!("{msg}");
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("obs_check: {e}");
            ExitCode::FAILURE
        }
    }
}

fn run(args: &[String]) -> Result<String, String> {
    match args {
        [cmd, path] if cmd == "trace" => {
            let text = std::fs::read_to_string(path).map_err(|e| format!("read {path}: {e}"))?;
            let stats =
                adagp_obs::validate_chrome_trace(&text).map_err(|e| format!("{path}: {e}"))?;
            if stats.spans == 0 {
                return Err(format!("{path}: trace contains no spans"));
            }
            Ok(format!(
                "{path}: {} spans, {} metadata events, {} lanes — ok",
                stats.spans, stats.metadata, stats.lanes
            ))
        }
        [cmd, path] if cmd == "profile" => {
            let text = std::fs::read_to_string(path).map_err(|e| format!("read {path}: {e}"))?;
            let stats = adagp_obs::validate_profile(&text).map_err(|e| format!("{path}: {e}"))?;
            if stats.nodes == 0 {
                return Err(format!("{path}: profile contains no spans"));
            }
            Ok(format!(
                "{path}: {} nodes, {} lanes, {} us total — ok",
                stats.nodes, stats.lanes, stats.total_us
            ))
        }
        [cmd, paths @ ..] if cmd == "bench" && !paths.is_empty() => {
            let mut out = Vec::with_capacity(paths.len());
            for path in paths {
                let snap = adagp_obs::bench::Snapshot::load(path.as_ref())?;
                snap.sanity().map_err(|e| format!("{path}: {e}"))?;
                out.push(format!(
                    "{path}: `{}` ({}), {} workloads × {} reps — ok",
                    snap.name,
                    snap.label,
                    snap.workloads.len(),
                    snap.reps
                ));
            }
            Ok(out.join("\n"))
        }
        [cmd, path] if cmd == "critpath" => {
            let text = std::fs::read_to_string(path).map_err(|e| format!("read {path}: {e}"))?;
            let stats = adagp_obs::validate_critpath(&text).map_err(|e| format!("{path}: {e}"))?;
            if stats.chain == 0 && stats.lanes == 0 {
                return Err(format!("{path}: report has no chain segments and no lanes"));
            }
            Ok(format!(
                "{path}: {} report, makespan {}, {} chain segments, {} blame rows, {} lanes — ok",
                stats.mode, stats.makespan, stats.chain, stats.blame, stats.lanes
            ))
        }
        [cmd, path, rest @ ..] if cmd == "metrics" => {
            let text = std::fs::read_to_string(path).map_err(|e| format!("read {path}: {e}"))?;
            let m = adagp_serve::parse_metrics(&text).map_err(|e| format!("{path}: {e}"))?;
            if let Some(why) = adagp_serve::check_invariants(&m) {
                return Err(format!("{path}: invariant violated: {why}"));
            }
            let mut out = format!("{path}: {} metrics, invariants ok", m.len());
            let mut it = rest.iter();
            while let Some(flag) = it.next() {
                if flag != "--histogram" {
                    return Err(format!("unknown flag `{flag}`"));
                }
                let family = it.next().ok_or("--histogram needs a family name")?;
                let count = m
                    .get(&format!("{family}_count"))
                    .copied()
                    .ok_or_else(|| format!("{path}: histogram `{family}` missing"))?;
                if count == 0 {
                    return Err(format!("{path}: histogram `{family}` recorded nothing"));
                }
                out.push_str(&format!("; {family}_count={count}"));
            }
            Ok(out)
        }
        _ => Err("usage: obs_check trace <path> | obs_check metrics <path> \
                  [--histogram <family>]... | obs_check profile <path> | \
                  obs_check bench <path>... | obs_check critpath <path>"
            .to_string()),
    }
}
