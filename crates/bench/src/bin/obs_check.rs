//! CI helper: validate a Chrome-trace dump or a `/metrics` scrape from
//! the command line, with the exact same checkers the test suites use
//! (`adagp_obs::validate_chrome_trace`, `adagp_serve::parse_metrics` +
//! `check_invariants`) — no python in the loop.
//!
//! ```text
//! obs_check trace <path>
//! obs_check metrics <path> [--histogram <family>]...
//! ```
//!
//! `trace` fails on unparseable JSON, a missing `traceEvents` array,
//! malformed span events, partially overlapping siblings on one lane, or
//! an empty trace. `metrics` fails on malformed lines or violated
//! counter/histogram invariants; each `--histogram <family>` additionally
//! requires that family to be present with a nonzero `_count`.

use std::process::ExitCode;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match run(&args) {
        Ok(msg) => {
            println!("{msg}");
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("obs_check: {e}");
            ExitCode::FAILURE
        }
    }
}

fn run(args: &[String]) -> Result<String, String> {
    match args {
        [cmd, path] if cmd == "trace" => {
            let text = std::fs::read_to_string(path).map_err(|e| format!("read {path}: {e}"))?;
            let stats =
                adagp_obs::validate_chrome_trace(&text).map_err(|e| format!("{path}: {e}"))?;
            if stats.spans == 0 {
                return Err(format!("{path}: trace contains no spans"));
            }
            Ok(format!(
                "{path}: {} spans, {} metadata events, {} lanes — ok",
                stats.spans, stats.metadata, stats.lanes
            ))
        }
        [cmd, path, rest @ ..] if cmd == "metrics" => {
            let text = std::fs::read_to_string(path).map_err(|e| format!("read {path}: {e}"))?;
            let m = adagp_serve::parse_metrics(&text).map_err(|e| format!("{path}: {e}"))?;
            if let Some(why) = adagp_serve::check_invariants(&m) {
                return Err(format!("{path}: invariant violated: {why}"));
            }
            let mut out = format!("{path}: {} metrics, invariants ok", m.len());
            let mut it = rest.iter();
            while let Some(flag) = it.next() {
                if flag != "--histogram" {
                    return Err(format!("unknown flag `{flag}`"));
                }
                let family = it.next().ok_or("--histogram needs a family name")?;
                let count = m
                    .get(&format!("{family}_count"))
                    .copied()
                    .ok_or_else(|| format!("{path}: histogram `{family}` missing"))?;
                if count == 0 {
                    return Err(format!("{path}: histogram `{family}` recorded nothing"));
                }
                out.push_str(&format!("; {family}_count={count}"));
            }
            Ok(out)
        }
        _ => Err(
            "usage: obs_check trace <path> | obs_check metrics <path> [--histogram <family>]..."
                .to_string(),
        ),
    }
}
