//! Table 2: Transformer on the Multi30k stand-in — accuracy, loss, BLEU
//! and training cycles for BP vs ADA-GP.

use adagp_accel::designs::AdaGpDesign;
use adagp_bench::model_grid::transformer_shapes;
use adagp_bench::report::render_table;
use adagp_bench::speedup_tables::cycle_pair;
use adagp_bench::translation::{run_transformer_experiment, TransformerBudget};

fn main() {
    let budget = if adagp_bench::full_budget() {
        TransformerBudget::full()
    } else {
        TransformerBudget::quick()
    };
    let (bp, gp) = run_transformer_experiment(&budget, 42);
    let (base_cycles, adagp_cycles) = cycle_pair(&transformer_shapes(), AdaGpDesign::Efficient);
    let rows = vec![
        vec![
            "Baseline(BP)".to_string(),
            format!("{:.2}", bp.val_acc),
            format!("{:.2}", bp.loss),
            format!("{:.2}", bp.bleu),
            format!("{:.2e}", base_cycles),
        ],
        vec![
            "ADA-GP".to_string(),
            format!("{:.2}", gp.val_acc),
            format!("{:.2}", gp.loss),
            format!("{:.2}", gp.bleu),
            format!("{:.2e}", adagp_cycles),
        ],
    ];
    println!(
        "{}",
        render_table(
            "Table 2: Transformer on Multi30k stand-in",
            &["Arm", "Val Acc.", "Loss", "BLEU", "#Cycles"],
            &rows,
        )
    );
    println!("Cycle speed-up: {:.2}x", base_cycles / adagp_cycles);
}
