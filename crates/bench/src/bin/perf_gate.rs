//! The perf-regression gate over the `BENCH_*` trajectory: compares two
//! bench snapshots (or two directories of them) workload-by-workload and
//! fails when a median slowed down beyond the noise band.
//!
//! ```text
//! perf_gate <before> <after> [--floor <pct>] [--report-only] [--json <path>]
//! ```
//!
//! `<before>` and `<after>` are `adagp-bench-snapshot-v1` files, or
//! directories whose `*.json` snapshots are paired by snapshot `name`.
//! Exit codes follow `sweep diff`: **0** clean, **1** regression, **2**
//! usage or unreadable/insane input. `--report-only` downgrades exit 1
//! to 0 (for noisy runners where the comparison is informational) but
//! never masks exit 2 — a snapshot that fails the MAD-band sanity check
//! is broken data, not noise.
//!
//! ## The threshold
//!
//! A workload regresses when its median grew by more than
//!
//! ```text
//! allowed = floor + 3 * (mad_before + mad_after) / median_before
//! ```
//!
//! i.e. a configurable relative floor (default 5%, `--floor`) plus three
//! combined MADs of measured noise. Robust statistics keep one slow rep
//! from faking a regression in `<after>`, and keep one fast rep from
//! hiding one in `<before>`. A median *shrinking* past the same band is
//! reported as an improvement (informational — improvements never fail
//! the gate, they just mean the committed snapshot understates the
//! current speed and is worth regenerating). A workload or snapshot
//! present before but missing after fails the gate: silently dropping a
//! trajectory point is how regressions hide. On failure the gate prints
//! the `regenerate` command stored in the before-snapshot verbatim.
//!
//! `--json <path>` additionally writes the full comparison as an
//! `adagp-perfgate-v1` report: one row per compared workload (medians,
//! relative delta, allowed band, verdict), the missing entries, and a
//! summary block with the final gate outcome — the machine-readable
//! form of exactly what the text output says.

use adagp_obs::bench::Snapshot;
use serde::Value;
use std::path::Path;
use std::process::ExitCode;

const DEFAULT_FLOOR_PCT: f64 = 5.0;

const USAGE: &str =
    "usage: perf_gate <before> <after> [--floor <pct>] [--report-only] [--json <path>]
  <before>/<after>  snapshot file, or directory of *.json snapshots (paired by name)
  --floor <pct>     minimum relative change considered real (default 5)
  --report-only     print the comparison but exit 0 on regressions (never on bad input)
  --json <path>     also write the comparison as an adagp-perfgate-v1 report";

/// Schema tag of the `--json` report.
const PERFGATE_SCHEMA: &str = "adagp-perfgate-v1";

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match run(&args) {
        Ok(true) => ExitCode::SUCCESS,
        Ok(false) => ExitCode::FAILURE,
        Err(e) => {
            eprintln!("perf_gate: {e}");
            ExitCode::from(2)
        }
    }
}

/// Loads one snapshot per `*.json` under `path` (or just `path` itself).
fn load(path: &str) -> Result<Vec<Snapshot>, String> {
    let p = Path::new(path);
    if p.is_dir() {
        let mut files: Vec<_> = std::fs::read_dir(p)
            .map_err(|e| format!("{path}: {e}"))?
            .filter_map(|entry| entry.ok().map(|e| e.path()))
            .filter(|f| f.extension().is_some_and(|ext| ext == "json"))
            .collect();
        files.sort();
        if files.is_empty() {
            return Err(format!("{path}: directory holds no *.json snapshots"));
        }
        files.iter().map(|f| Snapshot::load(f)).collect()
    } else {
        Ok(vec![Snapshot::load(p)?])
    }
}

fn run(args: &[String]) -> Result<bool, String> {
    let mut paths = Vec::new();
    let mut floor_pct = DEFAULT_FLOOR_PCT;
    let mut report_only = false;
    let mut json_path: Option<String> = None;
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--floor" => {
                floor_pct = it
                    .next()
                    .and_then(|v| v.parse().ok())
                    .filter(|p: &f64| p.is_finite() && *p >= 0.0)
                    .ok_or(USAGE)?
            }
            "--report-only" => report_only = true,
            "--json" => json_path = Some(it.next().ok_or(USAGE)?.clone()),
            _ if arg.starts_with('-') => return Err(format!("unknown flag `{arg}`\n{USAGE}")),
            _ => paths.push(arg.clone()),
        }
    }
    let [before_path, after_path] = paths.as_slice() else {
        return Err(USAGE.to_string());
    };

    let before = load(before_path)?;
    let after = load(after_path)?;
    for snap in before.iter().chain(&after) {
        snap.sanity().map_err(|e| format!("insane snapshot: {e}"))?;
    }

    let floor = floor_pct / 100.0;
    let mut regressions = 0u32;
    let mut improvements = 0u32;
    let mut compared = 0u32;
    let mut rows: Vec<Value> = Vec::new();
    let mut missing: Vec<Value> = Vec::new();
    for b in &before {
        let Some(a) = after.iter().find(|a| a.name == b.name) else {
            println!(
                "MISSING  snapshot `{}` present in {before_path}, absent in {after_path}",
                b.name
            );
            missing.push(Value::object(vec![
                ("snapshot", Value::String(b.name.clone())),
                ("workload", Value::Null),
            ]));
            regressions += 1;
            continue;
        };
        if b.env != a.env {
            println!(
                "WARN     `{}`: env differs (before {}t/{}p, after {}t/{}p) — times are not like-for-like",
                b.name, b.env.adagp_threads, b.env.nproc, a.env.adagp_threads, a.env.nproc
            );
        }
        for (wname, wb) in &b.workloads {
            let Some(wa) = a.workload(wname) else {
                println!("MISSING  `{}/{wname}` absent in {after_path}", b.name);
                missing.push(Value::object(vec![
                    ("snapshot", Value::String(b.name.clone())),
                    ("workload", Value::String(wname.clone())),
                ]));
                regressions += 1;
                continue;
            };
            compared += 1;
            let base = wb.median_us.max(1) as f64;
            let rel = (wa.median_us as f64 - wb.median_us as f64) / base;
            let allowed = floor + 3.0 * (wb.mad_us + wa.mad_us) as f64 / base;
            let verdict = if rel > allowed {
                regressions += 1;
                "REGRESS "
            } else if rel < -allowed {
                improvements += 1;
                "IMPROVE "
            } else {
                "ok      "
            };
            rows.push(Value::object(vec![
                ("snapshot", Value::String(b.name.clone())),
                ("workload", Value::String(wname.clone())),
                ("before_us", Value::UInt(wb.median_us)),
                ("after_us", Value::UInt(wa.median_us)),
                ("rel", Value::Float(rel)),
                ("allowed", Value::Float(allowed)),
                ("verdict", Value::String(verdict.trim().to_string())),
            ]));
            println!(
                "{verdict} `{}/{wname}`: {} -> {} us ({:+.1}% vs band ±{:.1}%)",
                b.name,
                wb.median_us,
                wa.median_us,
                rel * 100.0,
                allowed * 100.0
            );
        }
    }
    println!(
        "perf_gate: {compared} workloads compared, {regressions} regressions, {improvements} improvements (floor {floor_pct}%, labels {} -> {})",
        before.iter().map(|s| s.label.as_str()).collect::<Vec<_>>().join(","),
        after.iter().map(|s| s.label.as_str()).collect::<Vec<_>>().join(","),
    );
    if let Some(path) = &json_path {
        let report = Value::object(vec![
            ("schema", Value::String(PERFGATE_SCHEMA.to_string())),
            ("floor_pct", Value::Float(floor_pct)),
            ("report_only", Value::Bool(report_only)),
            ("workloads", Value::Array(rows)),
            ("missing", Value::Array(missing)),
            (
                "summary",
                Value::object(vec![
                    ("compared", Value::UInt(u64::from(compared))),
                    ("regressions", Value::UInt(u64::from(regressions))),
                    ("improvements", Value::UInt(u64::from(improvements))),
                    ("passed", Value::Bool(regressions == 0)),
                ]),
            ),
        ]);
        let mut text = serde::json::to_string_pretty(&report);
        text.push('\n');
        std::fs::write(path, text).map_err(|e| format!("write {path}: {e}"))?;
        println!("perf_gate: wrote {PERFGATE_SCHEMA} report to {path}");
    }
    if regressions > 0 {
        for b in &before {
            println!("regenerate `{}` with: {}", b.name, b.regenerate);
        }
        if report_only {
            println!("perf_gate: report-only — not failing the build");
            return Ok(true);
        }
        return Ok(false);
    }
    Ok(true)
}
