//! The `sweep` CLI: run, list and diff declarative experiment grids.
//!
//! ```text
//! sweep list                      # every preset with its axes and cell count
//! sweep list <preset>             # the preset's cells (id + key)
//! sweep run <preset> [--csv <path>] [--json <path>] [--quiet]
//! sweep diff <before> <after> [--tol <rel>]
//! ```
//!
//! `run` executes the grid in parallel on the shared runtime pool
//! (`ADAGP_THREADS` sizes it) and prints the cell table; `--csv` writes
//! the byte-stable metrics file, `--json` the full-precision run record
//! with timings. `diff` loads two stored runs (CSV or JSON, by
//! extension), compares them cell-by-cell and exits non-zero when a
//! metric regressed beyond the tolerance — the cross-PR gate CI uses
//! against the committed golden file.

use adagp_bench::report::render_table;
use adagp_sweep::{diff, presets, runner, store, DiffConfig, GridSpec, StoredRun};
use std::path::PathBuf;
use std::process::ExitCode;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let result = match args.first().map(String::as_str) {
        Some("list") => cmd_list(&args[1..]),
        Some("run") => cmd_run(&args[1..]),
        Some("diff") => cmd_diff(&args[1..]),
        Some("--help" | "-h" | "help") | None => {
            print!("{USAGE}");
            Ok(ExitCode::SUCCESS)
        }
        Some(other) => Err(format!("unknown subcommand `{other}`\n{USAGE}")),
    };
    result.unwrap_or_else(|msg| {
        eprintln!("sweep: {msg}");
        ExitCode::from(2)
    })
}

const USAGE: &str = "\
Usage:
  sweep list                                list presets (axes, cell counts)
  sweep list <preset>                       list a preset's cells (id + key)
  sweep run <preset> [--csv p] [--json p] [--quiet]
                                            execute a grid on the shared pool
  sweep diff <before> <after> [--tol rel]   compare stored runs (.csv/.json);
                                            exit 1 if any metric regressed
";

fn preset(name: &str) -> Result<GridSpec, String> {
    presets::by_name(name).ok_or_else(|| {
        let known: Vec<String> = presets::all().into_iter().map(|g| g.name).collect();
        format!("unknown preset `{name}` (known: {})", known.join(", "))
    })
}

fn cmd_list(args: &[String]) -> Result<ExitCode, String> {
    match args.first() {
        None => {
            let rows: Vec<Vec<String>> = presets::all()
                .iter()
                .map(|g| vec![g.name.clone(), g.axes_summary(), g.cell_count().to_string()])
                .collect();
            print!(
                "{}",
                render_table("sweep presets", &["Preset", "Axes", "Cells"], &rows)
            );
        }
        Some(name) => {
            let grid = preset(name)?;
            let rows: Vec<Vec<String>> = grid
                .expand()
                .into_iter()
                .map(|c| vec![c.id.clone(), c.key()])
                .collect();
            print!(
                "{}",
                render_table(&format!("{name} cells"), &["ID", "Cell"], &rows)
            );
        }
    }
    Ok(ExitCode::SUCCESS)
}

fn cmd_run(args: &[String]) -> Result<ExitCode, String> {
    let name = args
        .first()
        .ok_or_else(|| format!("run: missing preset name\n{USAGE}"))?;
    let grid = preset(name)?;
    let mut csv_path: Option<PathBuf> = None;
    let mut json_path: Option<PathBuf> = None;
    let mut quiet = false;
    let mut it = args[1..].iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--csv" => csv_path = Some(path_arg(&mut it, "--csv")?),
            "--json" => json_path = Some(path_arg(&mut it, "--json")?),
            "--quiet" => quiet = true,
            other => return Err(format!("run: unexpected argument `{other}`")),
        }
    }

    let run = runner::run_grid(&grid);
    if !quiet {
        let rows: Vec<Vec<String>> = run
            .cells
            .iter()
            .map(|c| {
                vec![
                    c.spec.id.clone(),
                    c.spec.key(),
                    adagp_sweep::store::csv_float(c.metrics.speedup),
                ]
            })
            .collect();
        print!(
            "{}",
            render_table(
                &format!("sweep run: {name}"),
                &["ID", "Cell", "Speed-up"],
                &rows
            )
        );
    }
    println!(
        "{}: {} cells in {:.1} ms on {} thread(s)",
        name,
        run.cells.len(),
        run.total_wall_micros as f64 / 1e3,
        adagp_runtime::pool().size()
    );
    if let Some(p) = &csv_path {
        store::write_csv(p, &run).map_err(|e| format!("write {}: {e}", p.display()))?;
        println!("wrote CSV to {}", p.display());
    }
    if let Some(p) = &json_path {
        store::write_json(p, &run).map_err(|e| format!("write {}: {e}", p.display()))?;
        println!("wrote JSON to {}", p.display());
    }
    Ok(ExitCode::SUCCESS)
}

fn cmd_diff(args: &[String]) -> Result<ExitCode, String> {
    let (before_path, after_path) = match args {
        [b, a, ..] if !b.starts_with("--") && !a.starts_with("--") => (b, a),
        _ => return Err(format!("diff: need <before> and <after> paths\n{USAGE}")),
    };
    let mut cfg = DiffConfig::default();
    let mut it = args[2..].iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--tol" => {
                let raw = it
                    .next()
                    .ok_or_else(|| "--tol requires a value".to_string())?;
                cfg.rel_tol = raw
                    .parse::<f64>()
                    .map_err(|_| format!("--tol: bad value `{raw}`"))?;
            }
            other => return Err(format!("diff: unexpected argument `{other}`")),
        }
    }
    let before = StoredRun::load(&PathBuf::from(before_path))?;
    let after = StoredRun::load(&PathBuf::from(after_path))?;
    let report = diff::diff_runs(&before, &after, &cfg);
    print!("{}", report.render());
    Ok(if report.has_regressions() {
        ExitCode::FAILURE
    } else {
        ExitCode::SUCCESS
    })
}

fn path_arg(it: &mut std::slice::Iter<'_, String>, flag: &str) -> Result<PathBuf, String> {
    it.next()
        .map(PathBuf::from)
        .ok_or_else(|| format!("{flag} requires a path argument"))
}
