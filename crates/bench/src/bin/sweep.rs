//! The `sweep` CLI: run, list, simulate and diff declarative experiment
//! grids.
//!
//! ```text
//! sweep list                      # every preset with its axes and cell count
//! sweep list <preset>             # the preset's cells (id + key)
//! sweep run <preset> [--csv <path>] [--json <path>] [--quiet]
//!           [--log-dir <dir>] [--shard <k/n>] [--window <n>]
//! sweep merge <preset> --log-dir <dir> [--csv <path>] [--json <path>]
//!           [--partial] [--quiet]
//! sweep sim <preset> [--csv <path>] [--no-contention] [--bandwidth <n>]
//!           [--buffer-words <n>] [--quiet]
//! sweep roofline <preset> [--csv <path>] [--tol <rel>] [--quiet]
//! sweep diff <before> <after> [--tol <rel>] [--preset <name>]
//! ```
//!
//! `run` executes the grid in parallel on the shared runtime pool
//! (`ADAGP_THREADS` sizes it) and prints the cell table; `--csv` writes
//! the byte-stable metrics file, `--json` the full-precision run record
//! with timings. With `--log-dir` the run becomes crash-safe and
//! resumable: every completed cell is appended to a per-shard NDJSON
//! log (fsync at each record boundary), already-logged cells are
//! skipped on re-invocation, `--shard k/n` runs one slice of the grid
//! (n cooperating invocations sharing the directory cover it exactly
//! once), and the final CSV/JSON are reconstructed from the merged logs
//! — byte-identical no matter how often the run was interrupted. In
//! log-dir mode the JSON record is the zero-timing snapshot form (wall
//! clocks are meaningless across resumed fragments). `merge` rebuilds
//! the final artifacts from an existing log directory without running
//! anything. `sim` runs every cell through the `adagp-sim`
//! discrete-event simulator and reports the batch-level detail
//! (per-phase makespans, simulated speed-up, utilization, overlap, spill
//! cycles, buffer peak); `--bandwidth`/`--buffer-words` set the base
//! contention config, per-cell axis overrides apply on top, and
//! `--no-contention` wins over everything (the analytic-equality mode).
//! `roofline` reports each cell's bandwidth knee — the smallest DRAM
//! bandwidth whose simulated training cycles are within the tolerance
//! (default 1%) of the contention-free run. `diff` loads two stored runs
//! (CSV or JSON, by extension), compares them cell-by-cell and exits
//! non-zero when a metric regressed beyond the tolerance — the cross-PR
//! gate CI uses against the committed golden files; on a regression it
//! prints the exact command that regenerates the golden (pass `--preset`
//! so the hint can name it).

use adagp_bench::report::render_table;
use adagp_sim::SimConfig;
use adagp_sweep::{
    diff, presets, roofline, runner, shardlog, simeval, store, DiffConfig, GridSpec, Shard,
    StoredRun,
};
use std::path::{Path, PathBuf};
use std::process::ExitCode;

fn main() -> ExitCode {
    let _trace = adagp_obs::trace_guard_from_env("sweep");
    let args: Vec<String> = std::env::args().skip(1).collect();
    let result = match args.first().map(String::as_str) {
        Some("list") => cmd_list(&args[1..]),
        Some("run") => cmd_run(&args[1..]),
        Some("merge") => cmd_merge(&args[1..]),
        Some("sim") => cmd_sim(&args[1..]),
        Some("roofline") => cmd_roofline(&args[1..]),
        Some("diff") => cmd_diff(&args[1..]),
        Some("--help" | "-h" | "help") | None => {
            print!("{USAGE}");
            Ok(ExitCode::SUCCESS)
        }
        Some(other) => Err(format!("unknown subcommand `{other}`\n{USAGE}")),
    };
    result.unwrap_or_else(|msg| {
        eprintln!("sweep: {msg}");
        ExitCode::from(2)
    })
}

const USAGE: &str = "\
Usage:
  sweep list                                list presets (axes, cell counts)
  sweep list <preset>                       list a preset's cells (id + key)
  sweep run <preset> [--csv p] [--json p] [--quiet]
            [--log-dir d] [--shard k/n] [--window n]
                                            execute a grid on the shared pool;
                                            --log-dir appends each finished
                                            cell to a crash-safe per-shard
                                            NDJSON log and resumes past cells
                                            already on disk; --shard k/n runs
                                            one slice (cells k-1 mod n);
                                            --window bounds cells in memory
  sweep merge <preset> --log-dir d [--csv p] [--json p] [--partial] [--quiet]
                                            rebuild final CSV/JSON from shard
                                            logs without evaluating anything
                                            (--partial accepts an incomplete
                                            grid)
  sweep sim <preset> [--csv p] [--no-contention] [--bandwidth n]
            [--buffer-words n] [--quiet]
                                            simulate a grid on the event engine
                                            (per-phase makespans, utilization,
                                            spill cycles; --no-contention wins
                                            over every bandwidth/buffer knob)
  sweep roofline <preset> [--csv p] [--tol rel] [--quiet]
                                            per-cell bandwidth knee: smallest
                                            DRAM words/cycle within tol (1%)
                                            of the contention-free cycles
  sweep diff <before> <after> [--tol rel] [--preset name]
                                            compare stored runs (.csv/.json);
                                            --preset names the grid in the
                                            regenerate hint on mismatch

Exit codes:
  0  success (diff: no metric regressed beyond the tolerance)
  1  diff found at least one regression
  2  usage, I/O or parse error
";

fn preset(name: &str) -> Result<GridSpec, String> {
    presets::by_name(name).ok_or_else(|| {
        let known: Vec<String> = presets::all().into_iter().map(|g| g.name).collect();
        format!("unknown preset `{name}` (known: {})", known.join(", "))
    })
}

fn cmd_list(args: &[String]) -> Result<ExitCode, String> {
    match args.first() {
        None => {
            let rows: Vec<Vec<String>> = presets::all()
                .iter()
                .map(|g| vec![g.name.clone(), g.axes_summary(), g.cell_count().to_string()])
                .collect();
            print!(
                "{}",
                render_table("sweep presets", &["Preset", "Axes", "Cells"], &rows)
            );
        }
        Some(name) => {
            let grid = preset(name)?;
            let rows: Vec<Vec<String>> = grid
                .expand()
                .into_iter()
                .map(|c| vec![c.id.clone(), c.key()])
                .collect();
            print!(
                "{}",
                render_table(&format!("{name} cells"), &["ID", "Cell"], &rows)
            );
        }
    }
    Ok(ExitCode::SUCCESS)
}

fn cmd_run(args: &[String]) -> Result<ExitCode, String> {
    let name = args
        .first()
        .ok_or_else(|| format!("run: missing preset name\n{USAGE}"))?;
    let grid = preset(name)?;
    let mut csv_path: Option<PathBuf> = None;
    let mut json_path: Option<PathBuf> = None;
    let mut quiet = false;
    let mut log_dir: Option<PathBuf> = None;
    let mut shard = Shard::default();
    let mut window = DEFAULT_WINDOW;
    let mut it = args[1..].iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--csv" => csv_path = Some(path_arg(&mut it, "--csv")?),
            "--json" => json_path = Some(path_arg(&mut it, "--json")?),
            "--log-dir" => log_dir = Some(path_arg(&mut it, "--log-dir")?),
            "--shard" => {
                let raw = it
                    .next()
                    .ok_or_else(|| "--shard requires a k/n value".to_string())?;
                shard = Shard::parse(raw)?;
            }
            "--window" => {
                let raw = it
                    .next()
                    .ok_or_else(|| "--window requires a value".to_string())?;
                window = raw
                    .parse::<usize>()
                    .ok()
                    .filter(|w| *w > 0)
                    .ok_or_else(|| {
                        format!("--window: bad value `{raw}` (need a positive integer)")
                    })?;
            }
            "--quiet" => quiet = true,
            other => return Err(format!("run: unexpected argument `{other}`")),
        }
    }
    if let Some(dir) = &log_dir {
        return run_logged(name, &grid, shard, dir, window, csv_path, json_path, quiet);
    }
    if shard != Shard::default() {
        return Err("run: --shard requires --log-dir (sharded runs live in shard logs)".into());
    }

    let run = runner::run_grid(&grid);
    if !quiet {
        let rows: Vec<Vec<String>> = run
            .cells
            .iter()
            .map(|c| {
                vec![
                    c.spec.id.clone(),
                    c.spec.key(),
                    adagp_sweep::store::csv_float(c.metrics.speedup),
                ]
            })
            .collect();
        print!(
            "{}",
            render_table(
                &format!("sweep run: {name}"),
                &["ID", "Cell", "Speed-up"],
                &rows
            )
        );
    }
    println!(
        "{}: {} cells in {:.1} ms on {} thread(s)",
        name,
        run.cells.len(),
        run.total_wall_micros as f64 / 1e3,
        adagp_runtime::pool().size()
    );
    if let Some(p) = &csv_path {
        store::write_csv(p, &run).map_err(|e| format!("write {}: {e}", p.display()))?;
        println!("wrote CSV to {}", p.display());
    }
    if let Some(p) = &json_path {
        store::write_json(p, &run).map_err(|e| format!("write {}: {e}", p.display()))?;
        println!("wrote JSON to {}", p.display());
    }
    Ok(ExitCode::SUCCESS)
}

/// Cells evaluated per append window in log-dir mode: small enough to
/// bound memory on huge grids, large enough to amortize pool dispatch.
const DEFAULT_WINDOW: usize = 64;

/// The `run --log-dir` path: resumable sharded execution plus merged
/// final artifacts once the grid is complete.
#[allow(clippy::too_many_arguments)]
fn run_logged(
    name: &str,
    grid: &GridSpec,
    shard: Shard,
    dir: &Path,
    window: usize,
    csv_path: Option<PathBuf>,
    json_path: Option<PathBuf>,
    quiet: bool,
) -> Result<ExitCode, String> {
    let stats = shardlog::run_sharded(grid, shard, dir, window)?;
    println!(
        "{name} [shard {}]: {} cells owned, {} resumed from log, {} evaluated ({} thread(s))",
        stats.shard,
        stats.owned,
        stats.resumed,
        stats.evaluated,
        adagp_runtime::pool().size()
    );
    let run = shardlog::merge_to_run(dir, grid)?;
    report_skipped(&run.skipped);
    if !quiet && !run.cells.is_empty() {
        let rows: Vec<Vec<String>> = run
            .cells
            .iter()
            .map(|c| vec![c.id.clone(), c.key(), store::csv_float(c.metrics[0])])
            .collect();
        print!(
            "{}",
            render_table(
                &format!("sweep run: {name} (merged log)"),
                &["ID", "Cell", "Speed-up"],
                &rows
            )
        );
    }
    if run.is_complete() {
        println!(
            "{name}: grid complete in {} ({} cells)",
            dir.display(),
            run.cells.len()
        );
        write_merged_outputs(&run, &grid.name, csv_path.as_deref(), json_path.as_deref())?;
    } else {
        println!(
            "{name}: {}/{} cells logged, {} missing — run the remaining shards, then \
             `sweep merge {name} --log-dir {}`",
            run.cells.len(),
            run.cells.len() + run.missing.len(),
            run.missing.len(),
            dir.display()
        );
        if csv_path.is_some() || json_path.is_some() {
            println!("final CSV/JSON not written: the merge is incomplete");
        }
    }
    Ok(ExitCode::SUCCESS)
}

fn cmd_merge(args: &[String]) -> Result<ExitCode, String> {
    let name = args
        .first()
        .ok_or_else(|| format!("merge: missing preset name\n{USAGE}"))?;
    let grid = preset(name)?;
    let mut csv_path: Option<PathBuf> = None;
    let mut json_path: Option<PathBuf> = None;
    let mut log_dir: Option<PathBuf> = None;
    let mut partial = false;
    let mut quiet = false;
    let mut it = args[1..].iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--csv" => csv_path = Some(path_arg(&mut it, "--csv")?),
            "--json" => json_path = Some(path_arg(&mut it, "--json")?),
            "--log-dir" => log_dir = Some(path_arg(&mut it, "--log-dir")?),
            "--partial" => partial = true,
            "--quiet" => quiet = true,
            other => return Err(format!("merge: unexpected argument `{other}`")),
        }
    }
    let dir = log_dir.ok_or_else(|| "merge: --log-dir is required".to_string())?;
    let run = shardlog::merge_to_run(&dir, &grid)?;
    report_skipped(&run.skipped);
    if !quiet {
        println!(
            "{name}: merged {} of {} cells from {} ({} extra record(s) ignored)",
            run.cells.len(),
            run.cells.len() + run.missing.len(),
            dir.display(),
            run.extras
        );
    }
    if !run.is_complete() && !partial {
        return Err(format!(
            "merge: {} cell(s) missing from the logs (first: {}); run the remaining \
             shards or pass --partial to write what is present",
            run.missing.len(),
            run.missing.first().map(String::as_str).unwrap_or("?"),
        ));
    }
    write_merged_outputs(&run, &grid.name, csv_path.as_deref(), json_path.as_deref())?;
    Ok(ExitCode::SUCCESS)
}

/// Streams a merged run into its final CSV/JSON artifacts (bounded
/// memory; bytes identical to the whole-file writers).
fn write_merged_outputs(
    run: &shardlog::MergedRun,
    grid_name: &str,
    csv_path: Option<&Path>,
    json_path: Option<&Path>,
) -> Result<(), String> {
    if let Some(p) = csv_path {
        let mut w = store::StreamingCsvWriter::create(p)
            .map_err(|e| format!("write {}: {e}", p.display()))?;
        for cell in &run.cells {
            w.write_cell(cell)
                .map_err(|e| format!("write {}: {e}", p.display()))?;
        }
        w.finish()
            .map_err(|e| format!("write {}: {e}", p.display()))?;
        println!("wrote CSV to {}", p.display());
    }
    if let Some(p) = json_path {
        let mut w = store::StreamingJsonWriter::create(p, grid_name)
            .map_err(|e| format!("write {}: {e}", p.display()))?;
        for cell in &run.cells {
            w.write_cell(cell)
                .map_err(|e| format!("write {}: {e}", p.display()))?;
        }
        w.finish()
            .map_err(|e| format!("write {}: {e}", p.display()))?;
        println!("wrote JSON to {}", p.display());
    }
    Ok(())
}

/// Surfaces undecodable shard-log spans on stderr (they are warnings:
/// every intact record was still recovered).
fn report_skipped(skipped: &[(PathBuf, shardlog::SkippedSpan)]) {
    for (path, span) in skipped {
        eprintln!(
            "sweep: warning: {}: skipped {span}",
            path.file_name()
                .map(|n| n.to_string_lossy().into_owned())
                .unwrap_or_else(|| path.display().to_string())
        );
    }
}

fn cmd_sim(args: &[String]) -> Result<ExitCode, String> {
    let name = args
        .first()
        .ok_or_else(|| format!("sim: missing preset name\n{USAGE}"))?;
    let grid = preset(name)?;
    let mut csv_path: Option<PathBuf> = None;
    let mut quiet = false;
    let mut cfg = SimConfig::default();
    let mut no_contention = false;
    let mut it = args[1..].iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--csv" => csv_path = Some(path_arg(&mut it, "--csv")?),
            "--no-contention" => no_contention = true,
            "--bandwidth" => {
                let raw = it
                    .next()
                    .ok_or_else(|| "--bandwidth requires a value".to_string())?;
                let bw: u64 = raw
                    .parse()
                    .map_err(|_| format!("--bandwidth: bad value `{raw}`"))?;
                cfg.dram_words_per_cycle = Some(bw);
            }
            "--buffer-words" => {
                let raw = it
                    .next()
                    .ok_or_else(|| "--buffer-words requires a value".to_string())?;
                let words: u64 = raw
                    .parse()
                    .map_err(|_| format!("--buffer-words: bad value `{raw}`"))?;
                cfg.buffer_words = Some(words);
            }
            "--quiet" => quiet = true,
            other => return Err(format!("sim: unexpected argument `{other}`")),
        }
    }
    if no_contention {
        // Applied last: contention off silences every bandwidth/buffer
        // knob, including the per-cell axis overrides (simeval composes
        // overrides only while the DRAM channel exists).
        cfg.dram_words_per_cycle = None;
        cfg.buffer_words = None;
    }

    let details = simeval::run_sim_grid(&grid, &cfg);
    if !quiet {
        let rows: Vec<Vec<String>> = details
            .iter()
            .map(|d| {
                vec![
                    d.spec.id.clone(),
                    d.spec.key(),
                    store::csv_float(d.sim_speedup),
                    store::csv_float(d.pe_utilization),
                    store::csv_float(d.overlap_efficiency),
                    store::csv_float(d.spill_cycles),
                    d.peak_buffer_words.to_string(),
                ]
            })
            .collect();
        print!(
            "{}",
            render_table(
                &format!("sweep sim: {name}"),
                &[
                    "ID",
                    "Cell",
                    "Sim speed-up",
                    "PE util",
                    "Overlap eff",
                    "Spill cycles",
                    "Peak buf (words)"
                ],
                &rows
            )
        );
    }
    println!(
        "{}: simulated {} cells ({}) on {} thread(s)",
        name,
        details.len(),
        match cfg.dram_words_per_cycle {
            Some(bw) => format!(
                "DRAM {bw} words/cycle, buffer {}",
                match cfg.buffer_words {
                    Some(w) => format!("{w} words"),
                    None => "unbounded".to_string(),
                }
            ),
            None => "no contention".to_string(),
        },
        adagp_runtime::pool().size()
    );
    if let Some(p) = &csv_path {
        std::fs::write(p, simeval::sim_detail_csv(&details))
            .map_err(|e| format!("write {}: {e}", p.display()))?;
        println!("wrote CSV to {}", p.display());
    }
    Ok(ExitCode::SUCCESS)
}

fn cmd_roofline(args: &[String]) -> Result<ExitCode, String> {
    let name = args
        .first()
        .ok_or_else(|| format!("roofline: missing preset name\n{USAGE}"))?;
    let grid = preset(name)?;
    let mut csv_path: Option<PathBuf> = None;
    let mut quiet = false;
    let mut tolerance = roofline::KNEE_TOLERANCE;
    let mut it = args[1..].iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--csv" => csv_path = Some(path_arg(&mut it, "--csv")?),
            "--tol" => {
                let raw = it
                    .next()
                    .ok_or_else(|| "--tol requires a value".to_string())?;
                tolerance = raw
                    .parse::<f64>()
                    .ok()
                    .filter(|t| t.is_finite() && *t >= 0.0)
                    .ok_or_else(|| {
                        format!("--tol: bad value `{raw}` (need a finite non-negative number)")
                    })?;
            }
            "--quiet" => quiet = true,
            other => return Err(format!("roofline: unexpected argument `{other}`")),
        }
    }

    let points = roofline::run_roofline_grid(&grid, &SimConfig::default(), tolerance);
    if !quiet {
        let rows: Vec<Vec<String>> = points
            .iter()
            .map(|p| {
                vec![
                    p.spec.id.clone(),
                    p.spec.key(),
                    p.knee_words_per_cycle.to_string(),
                    store::csv_float(p.free_cycles),
                    store::csv_float(p.sim_cycles),
                    store::csv_float(p.spill_cycles),
                    format!("{:.2}%", 100.0 * p.dram_stall_frac),
                ]
            })
            .collect();
        print!(
            "{}",
            render_table(
                &format!("sweep roofline: {name} (tol {:.1}%)", 100.0 * tolerance),
                &[
                    "ID",
                    "Cell",
                    "Knee (w/c)",
                    "Free cycles",
                    "Sim cycles",
                    "Spill cycles",
                    "Stall"
                ],
                &rows
            )
        );
    }
    println!(
        "{}: {} cells, knee = smallest bandwidth within {:.1}% of contention-free",
        name,
        points.len(),
        100.0 * tolerance
    );
    if let Some(p) = &csv_path {
        std::fs::write(p, roofline::roofline_csv(&points))
            .map_err(|e| format!("write {}: {e}", p.display()))?;
        println!("wrote CSV to {}", p.display());
    }
    Ok(ExitCode::SUCCESS)
}

fn cmd_diff(args: &[String]) -> Result<ExitCode, String> {
    let mut cfg = DiffConfig::default();
    let mut preset_name: Option<String> = None;
    let mut paths: Vec<&String> = Vec::new();
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--tol" => {
                let raw = it
                    .next()
                    .ok_or_else(|| "--tol requires a value".to_string())?;
                cfg.rel_tol = raw
                    .parse::<f64>()
                    .map_err(|_| format!("--tol: bad value `{raw}`"))?;
            }
            "--preset" => {
                let raw = it
                    .next()
                    .ok_or_else(|| "--preset requires a name".to_string())?;
                preset(raw)?; // validate early: a typo'd hint helps nobody
                preset_name = Some(raw.clone());
            }
            other if other.starts_with("--") => {
                return Err(format!("diff: unexpected argument `{other}`"))
            }
            _ => paths.push(a),
        }
    }
    let [before_path, after_path] = paths[..] else {
        return Err(format!("diff: need <before> and <after> paths\n{USAGE}"));
    };
    let before = StoredRun::load(&PathBuf::from(before_path))?;
    let after = StoredRun::load(&PathBuf::from(after_path))?;
    let report = diff::diff_runs(&before, &after, &cfg);
    print!("{}", report.render());
    Ok(if report.has_regressions() {
        let flag = if before_path.ends_with(".json") {
            "--json"
        } else {
            "--csv"
        };
        println!(
            "if the model change is intentional, regenerate the stored run:\n  \
             cargo run --release -p adagp-bench --bin sweep -- run {} --quiet {flag} {}",
            preset_name.as_deref().unwrap_or("<preset>"),
            before_path
        );
        ExitCode::FAILURE
    } else {
        ExitCode::SUCCESS
    })
}

fn path_arg(it: &mut std::slice::Iter<'_, String>, flag: &str) -> Result<PathBuf, String> {
    it.next()
        .map(PathBuf::from)
        .ok_or_else(|| format!("{flag} requires a path argument"))
}
