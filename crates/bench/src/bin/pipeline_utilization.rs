//! Reports per-stage busy/idle utilization of the pipelined ADA-GP
//! training queue (`AdaGp::train_epoch_pipelined`): data generation, model
//! forward/backward + optimizer work, and predictor updates run as three
//! overlapped stages on bounded queues.
//!
//! The pipeline is bit-identical to the serial loop — this binary verifies
//! that on the fly (same seeds, serial arm vs pipelined arm) and then
//! prints where each stage spent its wall-clock time.

use adagp_core::fit::FitOptions;
use adagp_core::{AdaGp, AdaGpConfig};
use adagp_nn::containers::Sequential;
use adagp_nn::data::{DatasetSpec, VisionDataset};
use adagp_nn::layers::{Conv2d, Flatten, Linear, Relu};
use adagp_nn::module::Module;
use adagp_nn::optim::Sgd;
use adagp_tensor::Prng;

fn model(rng: &mut Prng) -> Sequential {
    let mut m = Sequential::new();
    m.push(Conv2d::new(3, 8, 3, 1, 1, true, rng));
    m.push(Relu::new());
    m.push(Conv2d::new(8, 8, 3, 1, 1, true, rng));
    m.push(Relu::new());
    m.push(Flatten::new());
    m.push(Linear::new(8 * 16 * 16, 10, true, rng));
    m
}

fn main() {
    let _trace = adagp_obs::trace_guard_from_env("pipeline_utilization");
    let options = FitOptions::default();
    let ds = VisionDataset::new(DatasetSpec::cifar10(), 7);
    let epochs = 2usize;

    // Serial reference arm.
    let mut rng = Prng::seed_from_u64(3);
    let mut m_serial = model(&mut rng);
    let mut adagp = AdaGp::new(AdaGpConfig::default(), &mut m_serial, &mut rng);
    let mut opt = Sgd::new(0.02, 0.9);
    for _ in 0..epochs {
        for b in 0..options.batches_per_epoch {
            let (x, y) = ds.train_batch(b, options.batch_size);
            adagp.train_batch(&mut m_serial, &mut opt, &x, &y);
        }
        adagp.controller_mut().end_epoch();
    }

    // Pipelined arm, identical seeds.
    let mut rng = Prng::seed_from_u64(3);
    let mut m_pipe = model(&mut rng);
    let mut adagp = AdaGp::new(AdaGpConfig::default(), &mut m_pipe, &mut rng);
    let mut opt = Sgd::new(0.02, 0.9);
    for epoch in 0..epochs {
        let report =
            adagp.train_epoch_pipelined(&mut m_pipe, &mut opt, options.batches_per_epoch, 3, |b| {
                ds.train_batch(b, options.batch_size)
            });
        adagp.controller_mut().end_epoch();
        println!(
            "== epoch {epoch}: pipelined stage utilization ({} batches, pool size {}) ==",
            report.batches.len(),
            adagp_runtime::pool().size(),
        );
        for s in &report.stages {
            println!(
                "{:<12} busy {:>10.2?}  idle {:>10.2?}  items {:>4}  util {:>5.1}%",
                s.name,
                s.busy,
                s.idle,
                s.items,
                100.0 * s.utilization()
            );
        }
    }

    // Bit-identity check between the two arms.
    let mut ws = Vec::new();
    m_serial.visit_params(&mut |p| ws.push(p.value.clone()));
    let mut wp = Vec::new();
    m_pipe.visit_params(&mut |p| wp.push(p.value.clone()));
    assert_eq!(ws, wp, "pipelined arm diverged from serial arm");
    println!("\npipelined weights are bit-identical to the serial loop ✓");
}
