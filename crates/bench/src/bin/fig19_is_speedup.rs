//! Figure 19: ADA-GP speed-up over the Input-Stationary baseline.

use adagp_accel::Dataflow;
use adagp_bench::speedup_tables::print_speedup_figure;

fn main() {
    print_speedup_figure("Figure 19", Dataflow::InputStationary);
}
