//! Table 3: YOLO-v3-style detector on the PascalVOC stand-in — class
//! accuracy, test mAP and training cycles for BP vs ADA-GP
//! Efficient/MAX.

use adagp_accel::designs::AdaGpDesign;
use adagp_bench::detection::{run_detection_experiment, DetectionBudget};
use adagp_bench::model_grid::yolo_shapes;
use adagp_bench::report::render_table;
use adagp_bench::speedup_tables::cycle_pair;

fn main() {
    let budget = if adagp_bench::full_budget() {
        DetectionBudget::full()
    } else {
        DetectionBudget::quick()
    };
    let (bp, gp) = run_detection_experiment(&budget, 42);
    let shapes = yolo_shapes();
    let (base_cycles, eff_cycles) = cycle_pair(&shapes, AdaGpDesign::Efficient);
    let (_, max_cycles) = cycle_pair(&shapes, AdaGpDesign::Max);
    let rows = vec![
        vec![
            "Baseline(BP)".to_string(),
            format!("{:.2}", bp.class_acc),
            format!("{:.4}", bp.test_map),
            format!("{:.3e}", base_cycles),
        ],
        vec![
            "ADA-GP-Efficient".to_string(),
            format!("{:.2}", gp.class_acc),
            format!("{:.4}", gp.test_map),
            format!("{:.3e}", eff_cycles),
        ],
        vec![
            "ADA-GP-MAX".to_string(),
            format!("{:.2}", gp.class_acc),
            format!("{:.4}", gp.test_map),
            format!("{:.3e}", max_cycles),
        ],
    ];
    println!(
        "{}",
        render_table(
            "Table 3: YOLO-v3-style detector on PascalVOC stand-in",
            &["Arm", "Class Acc", "Test MAP", "#Cycles"],
            &rows,
        )
    );
    println!(
        "Cycle speed-ups: Efficient {:.2}x, MAX {:.2}x",
        base_cycles / eff_cycles,
        base_cycles / max_cycles
    );
}
