//! §6.6.1 iso-resource comparison: the baseline is granted the PE budget
//! that ADA-GP-MAX's extra hardware would buy (+10% PEs at iso-power on
//! FPGA, +11% at iso-area on ASIC). The paper reports the boosted
//! baseline gains only ≈4.3–5.5% — far less than ADA-GP-MAX's ≈1.47× —
//! so the prediction hardware is the better use of the budget.

use adagp_accel::dataflow::{AcceleratorConfig, Dataflow};
use adagp_accel::designs::AdaGpDesign;
use adagp_accel::speedup::{
    baseline_training_cycles, geomean, iso_resource_speedup, training_speedup, EpochMix,
};
use adagp_bench::report::{f3, render_table};
use adagp_bench::speedup_tables::DatasetScale;
use adagp_nn::models::shapes::model_shapes;
use adagp_nn::models::CnnModel;

fn main() {
    let cfg = AcceleratorConfig::default();
    let mix = EpochMix::paper();
    for (label, bonus) in [
        ("iso-power FPGA (+10% PEs)", 0.10),
        ("iso-area ASIC (+11% PEs)", 0.11),
    ] {
        let boosted = cfg.scaled_pes(1.0 + bonus);
        let mut rows = Vec::new();
        for dataset in DatasetScale::all() {
            let mut base_gain = Vec::new();
            let mut adagp_residual = Vec::new();
            for &m in CnnModel::all().iter() {
                let layers = model_shapes(m, dataset.input_scale());
                // How much the extra PEs alone buy the baseline.
                let plain =
                    baseline_training_cycles(&cfg, Dataflow::WeightStationary, &layers, &mix);
                let fast =
                    baseline_training_cycles(&boosted, Dataflow::WeightStationary, &layers, &mix);
                base_gain.push(plain / fast);
                // ADA-GP-MAX's advantage over that boosted baseline.
                adagp_residual.push(iso_resource_speedup(
                    &cfg,
                    Dataflow::WeightStationary,
                    &layers,
                    &mix,
                    bonus,
                ));
            }
            let adagp_max: Vec<f64> = CnnModel::all()
                .iter()
                .map(|&m| {
                    training_speedup(
                        &cfg,
                        Dataflow::WeightStationary,
                        AdaGpDesign::Max,
                        &model_shapes(m, dataset.input_scale()),
                        &mix,
                    )
                })
                .collect();
            rows.push(vec![
                dataset.name().to_string(),
                format!("{:+.2}%", 100.0 * (geomean(&base_gain) - 1.0)),
                f3(geomean(&adagp_max)),
                f3(geomean(&adagp_residual)),
            ]);
        }
        println!(
            "{}",
            render_table(
                &format!("Iso-resource comparison: {label}"),
                &[
                    "Dataset",
                    "Baseline gain from extra PEs",
                    "ADA-GP-MAX speed-up",
                    "ADA-GP-MAX vs boosted baseline",
                ],
                &rows,
            )
        );
    }
    println!("Paper: the iso-power/iso-area baselines gain only 4.31–5.53%, so");
    println!("ADA-GP-MAX remains the better use of the same hardware budget.");
    println!("(Our utilization model scales near-linearly with PEs, so the");
    println!("baseline gain here is an upper bound of ~10%.)");
}
