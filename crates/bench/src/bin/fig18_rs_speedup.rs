//! Figure 18: ADA-GP speed-up over the Row-Stationary baseline.

use adagp_accel::Dataflow;
use adagp_bench::speedup_tables::print_speedup_figure;

fn main() {
    print_speedup_figure("Figure 18", Dataflow::RowStationary);
}
