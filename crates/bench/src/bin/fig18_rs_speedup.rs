//! Figure 18: ADA-GP speed-up over the Row-Stationary baseline.
//!
//! Pass `--csv <path>` to also emit the rows as machine-readable CSV.

use adagp_accel::Dataflow;
use adagp_bench::speedup_tables::run_speedup_figure;

fn main() {
    run_speedup_figure("Figure 18", Dataflow::RowStationary);
}
