//! The `serve` CLI: run the resident sweep server.
//!
//! ```text
//! serve [--addr host:port] [--workers n] [--queue-depth n] [--window n]
//!       [--warm path]... [--flush path] [--log-dir dir]
//! ```
//!
//! Binds, warm-loads the cache from every `--warm` artifact (committed
//! `runs/*.csv`/`.json`, any schema version), prints the bound address
//! on stdout (`listening on <addr>` — parseable by scripts and the
//! load-test harness), and serves until `POST /shutdown`, at which point
//! it drains in-flight evaluations and, with `--flush`, writes the
//! byte-stable cache snapshot. `--log-dir` adds crash-safe incremental
//! durability: every fresh evaluation is appended to a shard log in the
//! directory (fsync per record) as it completes, and a restarted server
//! replays the merged log — killing the process mid-grid costs zero
//! recomputation. Cell evaluations run on the shared runtime pool
//! (`ADAGP_THREADS` sizes it).

use adagp_serve::{server, ServerConfig};
use std::path::PathBuf;
use std::process::ExitCode;

const USAGE: &str = "\
Usage:
  serve [--addr host:port]   bind address (default 127.0.0.1:0, ephemeral)
        [--workers n]        connection worker threads (default 4)
        [--queue-depth n]    bounded accept queue; overflow answers 503
        [--window n]         cells per /grid streaming window (default 8)
        [--warm path]...     warm the cache from stored runs (repeatable)
        [--flush path]       write the cache snapshot on shutdown
        [--log-dir dir]      crash-safe append log: replay it on start,
                             append every fresh evaluation (fsync'd)

Endpoints: GET /health, GET /metrics, GET /profile, GET /critical,
POST /grid, POST /shutdown. /profile serves the live span-tree profile
and /critical the live stall attribution (adagp-critpath-v1); both are
non-empty when running under ADAGP_TRACE or ADAGP_PROFILE.

Exit codes:
  0  clean shutdown (drained and, if configured, flushed)
  2  usage, bind, warm-load or flush error
";

fn main() -> ExitCode {
    let _trace = adagp_obs::trace_guard_from_env("serve");
    let _profile = adagp_obs::profile_guard_from_env();
    match run(&std::env::args().skip(1).collect::<Vec<_>>()) {
        Ok(code) => code,
        Err(msg) => {
            eprintln!("serve: {msg}");
            ExitCode::from(2)
        }
    }
}

fn run(args: &[String]) -> Result<ExitCode, String> {
    let mut cfg = ServerConfig::default();
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        let mut value = |name: &str| {
            it.next()
                .cloned()
                .ok_or_else(|| format!("{name} needs a value\n{USAGE}"))
        };
        match arg.as_str() {
            "--addr" => cfg.addr = value("--addr")?,
            "--workers" => cfg.workers = parse_num(&value("--workers")?, "--workers")?,
            "--queue-depth" => {
                cfg.queue_depth = parse_num(&value("--queue-depth")?, "--queue-depth")?;
            }
            "--window" => cfg.grid_window = parse_num(&value("--window")?, "--window")?,
            "--warm" => cfg.warm.push(PathBuf::from(value("--warm")?)),
            "--flush" => cfg.flush_path = Some(PathBuf::from(value("--flush")?)),
            "--log-dir" => cfg.log_dir = Some(PathBuf::from(value("--log-dir")?)),
            "--help" | "-h" => {
                print!("{USAGE}");
                return Ok(ExitCode::SUCCESS);
            }
            other => return Err(format!("unknown argument `{other}`\n{USAGE}")),
        }
    }
    let handle = server::start(cfg)?;
    let state = handle.state().clone();
    println!("listening on {}", handle.addr());
    match handle.serve_forever()? {
        Some(flushed) => println!("drained; flushed {flushed} cells"),
        None => println!("drained"),
    }
    let m: std::collections::HashMap<&str, u64> = state.metrics.snapshot().into_iter().collect();
    println!(
        "served {} requests ({} grids, {} cells: {} hits, {} evaluated, {} joined)",
        m["requests_total"],
        m["grid_requests"],
        m["cells_served"],
        m["cell_hits"],
        m["evaluations"],
        m["coalesced_waits"]
    );
    Ok(ExitCode::SUCCESS)
}

fn parse_num(text: &str, flag: &str) -> Result<usize, String> {
    text.parse::<usize>()
        .map_err(|_| format!("{flag}: `{text}` is not a count\n{USAGE}"))
}
