//! Sweep-throughput point for the perf trajectory: times full grid
//! evaluations of the `smoke` and `bandwidth_smoke` presets and writes
//! `BENCH_sweep.json` in the `adagp-bench-snapshot-v1` schema.
//!
//! Regenerate the committed snapshot from the repo root with:
//!
//! ```text
//! cargo run --release -p adagp-bench --bin bench_sweep
//! ```
//!
//! Usage: `bench_sweep [--out <path>] [--reps <n>]`.
//!
//! One warm-up grid per preset runs first — it also populates the
//! process-global roofline-knee memo, so no timed rep pays the
//! cold-cache penalty. Workload times are whole-grid wall micros (the
//! unit `perf_gate` compares); the printed cells/sec figure is the
//! human-facing throughput derived from the median.

use adagp_obs::bench::{EnvBlock, Snapshot, WorkloadStats};
use adagp_sweep::{presets, runner, GridSpec};
use std::time::Instant;

const REGENERATE: &str = "cargo run --release -p adagp-bench --bin bench_sweep";
const DEFAULT_REPS: usize = 7;

fn usage() -> ! {
    eprintln!("usage: bench_sweep [--out <path>] [--reps <n>]");
    std::process::exit(2);
}

fn measure(snap: &mut Snapshot, reps: usize, spec: &GridSpec) {
    let warm = runner::run_grid(spec);
    let cells = warm.cells.len().max(1);
    let samples: Vec<u64> = (0..reps)
        .map(|_| {
            let t = Instant::now();
            let grid = runner::run_grid(spec);
            let us = t.elapsed().as_micros() as u64;
            assert_eq!(grid.cells.len(), cells, "grid size changed between reps");
            us
        })
        .collect();
    let stats = WorkloadStats::from_samples(&samples);
    let cells_per_sec = cells as f64 / (stats.median_us.max(1) as f64 / 1e6);
    println!(
        "{:<16} median {:>8} us   mad {:>6} us   min {:>8} us   {:>8.1} cells/s",
        spec.name, stats.median_us, stats.mad_us, stats.min_us, cells_per_sec
    );
    snap.push_workload(&spec.name, stats);
}

fn main() {
    let mut out_path = "BENCH_sweep.json".to_string();
    let mut reps = DEFAULT_REPS;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--out" => out_path = args.next().unwrap_or_else(|| usage()),
            "--reps" => {
                reps = args
                    .next()
                    .and_then(|v| v.parse().ok())
                    .filter(|&r| r > 0)
                    .unwrap_or_else(|| usage())
            }
            _ => usage(),
        }
    }

    let env = EnvBlock::current(adagp_runtime::pool().size());
    let mut snap = Snapshot::new("sweep", REGENERATE, reps as u64, env);
    measure(&mut snap, reps, &presets::smoke());
    measure(&mut snap, reps, &presets::bandwidth_smoke());

    snap.sanity().expect("freshly measured snapshot is sane");
    snap.write(out_path.as_ref())
        .unwrap_or_else(|e| panic!("write {out_path}: {e}"));
    println!("wrote {out_path} (label {})", snap.label);
}
