//! Table 1: accuracy comparison between ADA-GP and the BP baseline over
//! the CNN zoo × {CIFAR10, CIFAR100, ImageNet} stand-ins.
//!
//! Set `ADAGP_FULL=1` for the fuller budget, `ADAGP_MODELS=vgg13,resnet50`
//! to restrict the model set.

use adagp_bench::accuracy::{run_accuracy_experiment, TrainBudget};
use adagp_bench::report::render_table;
use adagp_nn::data::DatasetSpec;
use adagp_nn::models::CnnModel;

fn selected_models() -> Vec<CnnModel> {
    if let Ok(spec) = std::env::var("ADAGP_MODELS") {
        let wanted: Vec<String> = spec.split(',').map(|s| s.trim().to_lowercase()).collect();
        CnnModel::all()
            .into_iter()
            .filter(|m| {
                wanted
                    .iter()
                    .any(|w| m.name().to_lowercase().replace('-', "") == w.replace('-', ""))
            })
            .collect()
    } else {
        CnnModel::all().to_vec()
    }
}

fn main() {
    let budget = if adagp_bench::full_budget() {
        TrainBudget::full()
    } else {
        TrainBudget::quick()
    };
    // CPU-scaled dataset stand-ins; class counts are reduced in quick mode
    // so the budgeted runs land above chance (see DESIGN.md §3).
    let datasets: Vec<(&str, DatasetSpec)> = if adagp_bench::full_budget() {
        vec![
            ("CIFAR10", DatasetSpec::cifar10()),
            ("CIFAR100", DatasetSpec::cifar100()),
            ("ImageNet", DatasetSpec::imagenet()),
        ]
    } else {
        vec![
            (
                "CIFAR10",
                DatasetSpec {
                    classes: 10,
                    channels: 3,
                    size: 12,
                    train_len: 160,
                    test_len: 64,
                },
            ),
            (
                "CIFAR100",
                DatasetSpec {
                    classes: 20,
                    channels: 3,
                    size: 12,
                    train_len: 160,
                    test_len: 64,
                },
            ),
            (
                "ImageNet",
                DatasetSpec {
                    classes: 40,
                    channels: 3,
                    size: 16,
                    train_len: 160,
                    test_len: 64,
                },
            ),
        ]
    };

    let mut rows = Vec::new();
    for model in selected_models() {
        let mut cells = vec![model.name().to_string()];
        for (dname, spec) in &datasets {
            let r = run_accuracy_experiment(model, *spec, &budget, 42);
            eprintln!(
                "{} / {}: BP {:.2}% ADA-GP {:.2}%",
                model.name(),
                dname,
                r.bp_accuracy,
                r.adagp_accuracy
            );
            cells.push(format!("{:.2}", r.bp_accuracy));
            cells.push(format!("{:.2}", r.adagp_accuracy));
        }
        rows.push(cells);
    }
    println!(
        "{}",
        render_table(
            "Table 1: Accuracy, BP vs ADA-GP (synthetic CIFAR10/CIFAR100/ImageNet stand-ins)",
            &[
                "Model",
                "C10 BP",
                "C10 ADA-GP",
                "C100 BP",
                "C100 ADA-GP",
                "ImgNet BP",
                "ImgNet ADA-GP",
            ],
            &rows,
        )
    );
}
