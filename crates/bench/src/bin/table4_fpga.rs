//! Table 4: FPGA resource usage and on-chip power of the ADA-GP designs
//! vs the baseline (component model calibrated to the paper's Virtex-7
//! numbers).

use adagp_accel::designs::AdaGpDesign;
use adagp_accel::synthesis::FpgaModel;
use adagp_bench::report::render_table;

fn main() {
    let m = FpgaModel::default();

    let mut rows = Vec::new();
    let b = m.baseline();
    rows.push(vec![
        "Baseline".to_string(),
        b.clb_luts.to_string(),
        b.clb_registers.to_string(),
        b.bram36.to_string(),
        b.bram18.to_string(),
        b.dsp48.to_string(),
    ]);
    for d in AdaGpDesign::all() {
        let r = m.design(d);
        rows.push(vec![
            d.name().to_string(),
            r.clb_luts.to_string(),
            r.clb_registers.to_string(),
            r.bram36.to_string(),
            r.bram18.to_string(),
            r.dsp48.to_string(),
        ]);
    }
    println!(
        "{}",
        render_table(
            "Table 4a: FPGA resource utilization",
            &["Design", "CLB LUTs", "CLB Regs", "RAMB36", "RAMB18", "DSP48E1"],
            &rows,
        )
    );

    let mut prows = Vec::new();
    let bp = m.baseline_power();
    let fmt_power = |name: &str, p: adagp_accel::synthesis::FpgaPower| {
        vec![
            name.to_string(),
            format!("{:.3}", p.clocks),
            format!("{:.3}", p.logic),
            format!("{:.3}", p.signals),
            format!("{:.3}", p.bram),
            format!("{:.3}", p.dsps),
            format!("{:.3}", p.static_power),
            format!("{:.3}", p.total()),
        ]
    };
    prows.push(fmt_power("Baseline", bp));
    for d in AdaGpDesign::all() {
        prows.push(fmt_power(d.name(), m.design_power(d)));
    }
    println!(
        "{}",
        render_table(
            "Table 4b: FPGA on-chip power (W)",
            &["Design", "Clocks", "Logic", "Signals", "BRAM", "DSPs", "Static", "Total"],
            &prows,
        )
    );
    for d in AdaGpDesign::all() {
        println!(
            "{} power overhead: {:.1}%",
            d.name(),
            m.power_overhead_percent(d)
        );
    }
}
