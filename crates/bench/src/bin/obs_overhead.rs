//! Observability overhead snapshot: times the pool-parallel kernel chain
//! and the smoke sweep with span recording disabled vs enabled and
//! writes the comparison to `BENCH_obs.json` (or the path given as the
//! first argument) in the `adagp-bench-snapshot-v1` schema.
//!
//! Regenerate the committed snapshot from the repo root with:
//!
//! ```text
//! cargo run --release -p adagp-bench --bin obs_overhead
//! ```
//!
//! Methodology: one warm-up pass first (it also populates the sweep's
//! process-global roofline-knee memo, so neither timed arm gets the
//! cold-cache penalty), then `REPS` interleaved disabled/enabled reps of
//! each workload with alternating order, so slow drift (frequency
//! scaling, cache residency) lands on both arms instead of biasing
//! whichever ran second. Traced lanes are reset between reps so no rep
//! pays drop-path effects another rep caused. Each arm becomes one
//! snapshot workload (`kernel_disabled`, `kernel_enabled`, …) carrying
//! `{median_us, mad_us, min_us}` — `perf_gate` compares any of them
//! across revisions, and the disabled/enabled pairing inside one file
//! is the overhead claim itself.

use adagp_obs as obs;
use adagp_obs::bench::{EnvBlock, Snapshot, WorkloadStats};
use adagp_sweep::{presets, runner};
use adagp_tensor::{init, Prng};
use std::time::Instant;

const REPS: usize = 15;
const KERNEL_ITERS: usize = 20;
const SWEEP_ITERS: usize = 5;
const REGENERATE: &str = "cargo run --release -p adagp-bench --bin obs_overhead";

/// The pool-parallel kernel chain (same shape family as the noperturb
/// battery, iterated to a measurable duration).
fn kernel_workload() -> f32 {
    let mut rng = Prng::seed_from_u64(11);
    let a = init::uniform(&[192, 128], -1.0, 1.0, &mut rng);
    let b = init::uniform(&[128, 160], -1.0, 1.0, &mut rng);
    let mut acc = 0.0f32;
    for _ in 0..KERNEL_ITERS {
        let c = a.matmul(&b);
        let d = c.matmul_tn(&a);
        acc += d.data()[0];
    }
    acc
}

fn sweep_workload() -> usize {
    (0..SWEEP_ITERS)
        .map(|_| runner::run_grid(&presets::smoke()).cells.len())
        .sum()
}

/// One timed run of `f` with recording set to `on`.
fn time_once(on: bool, f: impl Fn()) -> u64 {
    obs::set_enabled(on);
    let t = Instant::now();
    f();
    let us = t.elapsed().as_micros() as u64;
    obs::set_enabled(false);
    obs::reset();
    us
}

/// Times both arms of one workload, interleaved, and appends them to the
/// snapshot as `<name>_disabled` / `<name>_enabled`.
fn arm(snap: &mut Snapshot, name: &str, f: impl Fn()) {
    let mut off = Vec::with_capacity(REPS);
    let mut on = Vec::with_capacity(REPS);
    for rep in 0..REPS {
        if rep % 2 == 0 {
            off.push(time_once(false, &f));
            on.push(time_once(true, &f));
        } else {
            on.push(time_once(true, &f));
            off.push(time_once(false, &f));
        }
    }
    let disabled = WorkloadStats::from_samples(&off);
    let enabled = WorkloadStats::from_samples(&on);
    let overhead_pct = if disabled.median_us == 0 {
        0.0
    } else {
        100.0 * (enabled.median_us as f64 - disabled.median_us as f64) / disabled.median_us as f64
    };
    println!(
        "{name:<12} disabled {:>8} us (mad {:>5})   enabled {:>8} us (mad {:>5})   overhead {overhead_pct:+.2}%",
        disabled.median_us, disabled.mad_us, enabled.median_us, enabled.mad_us,
    );
    snap.push_workload(&format!("{name}_disabled"), disabled);
    snap.push_workload(&format!("{name}_enabled"), enabled);
}

fn main() {
    let out_path = std::env::args()
        .nth(1)
        .unwrap_or_else(|| "BENCH_obs.json".to_string());

    // Warm-up: knee memo, page cache, pool spin-up.
    kernel_workload();
    sweep_workload();

    let env = EnvBlock::current(adagp_runtime::pool().size());
    let mut snap = Snapshot::new("obs_overhead", REGENERATE, REPS as u64, env);
    arm(&mut snap, "kernel", || {
        std::hint::black_box(kernel_workload());
    });
    arm(&mut snap, "sweep_smoke", || {
        std::hint::black_box(sweep_workload());
    });

    snap.sanity().expect("freshly measured snapshot is sane");
    snap.write(out_path.as_ref())
        .unwrap_or_else(|e| panic!("write {out_path}: {e}"));
    println!("wrote {out_path} (label {})", snap.label);
}
