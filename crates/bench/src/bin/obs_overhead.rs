//! Observability overhead snapshot: times the pool-parallel kernel chain
//! and the smoke sweep with span recording disabled vs enabled and
//! writes the comparison to `BENCH_obs.json` (or the path given as the
//! first argument).
//!
//! Regenerate the committed snapshot from the repo root with:
//!
//! ```text
//! cargo run --release -p adagp-bench --bin obs_overhead
//! ```
//!
//! Methodology: one warm-up pass first (it also populates the sweep's
//! process-global roofline-knee memo, so neither timed arm gets the
//! cold-cache penalty), then `REPS` interleaved disabled/enabled reps of
//! each workload with alternating order, reporting each arm's best
//! observed time. Traced lanes are reset between reps so no rep pays
//! drop-path effects another rep caused.

use adagp_obs as obs;
use adagp_sweep::{presets, runner};
use adagp_tensor::{init, Prng};
use serde::Value;
use std::time::Instant;

const REPS: usize = 15;
const KERNEL_ITERS: usize = 20;
const SWEEP_ITERS: usize = 5;

/// The pool-parallel kernel chain (same shape family as the noperturb
/// battery, iterated to a measurable duration).
fn kernel_workload() -> f32 {
    let mut rng = Prng::seed_from_u64(11);
    let a = init::uniform(&[192, 128], -1.0, 1.0, &mut rng);
    let b = init::uniform(&[128, 160], -1.0, 1.0, &mut rng);
    let mut acc = 0.0f32;
    for _ in 0..KERNEL_ITERS {
        let c = a.matmul(&b);
        let d = c.matmul_tn(&a);
        acc += d.data()[0];
    }
    acc
}

fn sweep_workload() -> usize {
    (0..SWEEP_ITERS)
        .map(|_| runner::run_grid(&presets::smoke()).cells.len())
        .sum()
}

/// One timed run of `f` with recording set to `on`.
fn time_once(on: bool, f: impl Fn()) -> u64 {
    obs::set_enabled(on);
    let t = Instant::now();
    f();
    let us = t.elapsed().as_micros() as u64;
    obs::set_enabled(false);
    obs::reset();
    us
}

/// Minimum over reps: the best-observed run is the standard estimator
/// for intrinsic cost when the noise (scheduler, frequency scaling) is
/// strictly additive.
fn best(samples: &[u64]) -> u64 {
    *samples.iter().min().expect("at least one rep")
}

fn arm(name: &str, f: impl Fn()) -> (String, Value) {
    // Interleave the arms rep-by-rep and alternate which goes first, so
    // slow warm-up drift (frequency scaling, cache residency) lands on
    // both medians instead of biasing whichever arm ran second.
    let mut off = Vec::with_capacity(REPS);
    let mut on = Vec::with_capacity(REPS);
    for rep in 0..REPS {
        if rep % 2 == 0 {
            off.push(time_once(false, &f));
            on.push(time_once(true, &f));
        } else {
            on.push(time_once(true, &f));
            off.push(time_once(false, &f));
        }
    }
    let disabled = best(&off);
    let enabled = best(&on);
    let overhead_pct = if disabled == 0 {
        0.0
    } else {
        100.0 * (enabled as f64 - disabled as f64) / disabled as f64
    };
    println!("{name:<12} disabled {disabled:>8} us   enabled {enabled:>8} us   overhead {overhead_pct:+.2}%");
    (
        name.to_string(),
        Value::object(vec![
            ("disabled_us", Value::UInt(disabled)),
            ("enabled_us", Value::UInt(enabled)),
            ("overhead_pct", Value::Float(overhead_pct)),
        ]),
    )
}

fn main() {
    let out_path = std::env::args()
        .nth(1)
        .unwrap_or_else(|| "BENCH_obs.json".to_string());

    // Warm-up: knee memo, page cache, pool spin-up.
    kernel_workload();
    sweep_workload();

    let kernel = arm("kernel", || {
        std::hint::black_box(kernel_workload());
    });
    let sweep = arm("sweep_smoke", || {
        std::hint::black_box(sweep_workload());
    });

    let root = Value::object(vec![
        (
            "_regenerate",
            Value::String("cargo run --release -p adagp-bench --bin obs_overhead".to_string()),
        ),
        ("bench", Value::String("obs_overhead".to_string())),
        ("reps_per_arm", Value::UInt(REPS as u64)),
        ("threads", Value::UInt(adagp_runtime::pool().size() as u64)),
        (
            "workloads",
            Value::object(vec![
                (kernel.0.as_str(), kernel.1),
                (sweep.0.as_str(), sweep.1),
            ]),
        ),
    ]);
    let mut text = serde::json::to_string_pretty(&root);
    text.push('\n');
    std::fs::write(&out_path, &text).unwrap_or_else(|e| panic!("write {out_path}: {e}"));
    println!("wrote {out_path}");
}
