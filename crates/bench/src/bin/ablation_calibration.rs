//! Ablation: gradient-norm calibration on/off.
//!
//! This reproduction adds one engineering refinement over the paper's
//! description: predicted gradients are rescaled to an EMA of the site's
//! true-gradient norm (DESIGN.md §5). This harness quantifies its effect
//! at the CPU budget.

use adagp_core::trainer::evaluate_accuracy;
use adagp_core::{AdaGp, AdaGpConfig, ScheduleConfig};
use adagp_nn::data::{DatasetSpec, VisionDataset};
use adagp_nn::models::{build_cnn, CnnModel, ModelConfig};
use adagp_nn::optim::Sgd;
use adagp_tensor::Prng;

fn run(calibrate: bool) -> f32 {
    let spec = DatasetSpec {
        classes: 10,
        channels: 3,
        size: 12,
        train_len: 160,
        test_len: 64,
    };
    let ds = VisionDataset::new(spec, 42);
    let model_cfg = ModelConfig {
        width: 0.0625,
        depth_div: 4,
        classes: spec.classes,
    };
    let mut rng = Prng::seed_from_u64(1);
    let mut model = build_cnn(CnnModel::Vgg13, &model_cfg, 3, spec.size, &mut rng);
    let mut cfg = AdaGpConfig {
        schedule: ScheduleConfig {
            warmup_epochs: 2,
            epochs_per_stage: 1,
            ..Default::default()
        },
        track_metrics: false,
        norm_calibration: calibrate,
        ..Default::default()
    };
    cfg.predictor.lr = 1e-3;
    let mut adagp = AdaGp::new(cfg, &mut model, &mut rng);
    let mut opt = Sgd::new(0.01, 0.9);
    for _ in 0..6 {
        for b in 0..16 {
            let (x, y) = ds.train_batch(b, 8);
            adagp.train_batch(&mut model, &mut opt, &x, &y);
        }
        adagp.controller_mut().end_epoch();
    }
    evaluate_accuracy(&mut model, (0..4).map(|b| ds.test_batch(b, 8)))
}

fn main() {
    let with = run(true);
    let without = run(false);
    println!("== Ablation: predicted-gradient norm calibration (VGG13, CIFAR10 stand-in) ==");
    println!("with calibration:    {with:.2}%");
    println!("without calibration: {without:.2}%");
    println!("delta:               {:+.2} points", with - without);
}
