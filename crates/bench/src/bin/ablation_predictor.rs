//! Ablation: the two scalability choices of §3.6.
//!
//! 1. **Single shared predictor vs per-layer predictors** — parameter
//!    storage comparison over the model zoo (the "Curse of Scale",
//!    challenge 1 of the paper).
//! 2. **Tensor reorganization vs a flat FC predictor** — the paper's own
//!    VGG13 conv example: a flat predictor needs
//!    `batch·out_ch·W·H × out_ch·in_ch·k·k` weights; reorganization cuts
//!    the FC to `feat × in_ch·k·k`.

use adagp_bench::report::render_table;
use adagp_core::{Predictor, PredictorConfig};
use adagp_nn::models::shapes::{model_shapes, InputScale, LayerKind};
use adagp_nn::models::CnnModel;
use adagp_nn::{SiteKind, SiteMeta};
use adagp_tensor::Prng;

fn site_metas_for(model: CnnModel) -> Vec<SiteMeta> {
    model_shapes(model, InputScale::ImageNet)
        .into_iter()
        .map(|l| SiteMeta {
            kind: match l.kind {
                LayerKind::Linear => SiteKind::Linear,
                _ => SiteKind::Conv2d,
            },
            weight_shape: match l.kind {
                LayerKind::Linear => vec![l.out_ch, l.in_ch],
                LayerKind::DepthwiseConv => vec![l.out_ch, 1, l.k, l.k],
                LayerKind::Conv => vec![l.out_ch, l.in_ch, l.k, l.k],
            },
            label: l.label,
        })
        .collect()
}

fn main() {
    let cfg = PredictorConfig::default();
    let mut rows = Vec::new();
    for model in [CnnModel::Vgg13, CnnModel::ResNet50, CnnModel::DenseNet201] {
        let sites = site_metas_for(model);
        let mut rng = Prng::seed_from_u64(0);
        let mut shared = Predictor::for_sites(cfg, &sites, &mut rng);
        let shared_params = shared.param_count();
        // Per-layer predictors: one FC head sized per layer.
        let per_layer: usize = sites
            .iter()
            .map(|s| {
                let mut rng = Prng::seed_from_u64(0);
                let mut p = Predictor::new(cfg, s.grads_per_out_channel(), &mut rng);
                p.param_count()
            })
            .sum();
        rows.push(vec![
            model.name().to_string(),
            sites.len().to_string(),
            format!("{:.2}M", shared_params as f64 / 1e6),
            format!("{:.2}M", per_layer as f64 / 1e6),
            format!("{:.1}x", per_layer as f64 / shared_params as f64),
        ]);
    }
    println!(
        "{}",
        render_table(
            "Ablation 1: shared predictor vs per-layer predictors (storage)",
            &[
                "Model",
                "Layers",
                "Shared params",
                "Per-layer params",
                "Reduction"
            ],
            &rows,
        )
    );

    // Ablation 2: the §3.6 example — VGG13's Conv2d(128, 256, 3x3) at 28².
    let batch = 128u64;
    let (out_ch, in_ch, k, w, h) = (256u64, 128u64, 3u64, 28u64, 28u64);
    let flat_in = batch * out_ch * w * h;
    let flat_out = out_ch * in_ch * k * k;
    let flat_weights = flat_in * flat_out;
    let feat = (cfg.conv_channels * cfg.pooled_size * cfg.pooled_size) as u64;
    let reorg_weights = feat * (in_ch * k * k);
    println!("Ablation 2: flat FC vs tensor reorganization for VGG13 Conv2d(128,256,3x3) @28^2");
    println!(
        "  flat FC predictor weights:        {:.2e}",
        flat_weights as f64
    );
    println!(
        "  reorganized FC predictor weights: {:.2e}",
        reorg_weights as f64
    );
    println!(
        "  reduction: {:.1e}x",
        flat_weights as f64 / reorg_weights as f64
    );
}
