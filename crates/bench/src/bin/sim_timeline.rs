//! `sim_timeline` — simulate one training-step schedule layer by layer
//! and show where the overlap lands: the per-task Gantt timeline, the
//! per-resource utilization report and (optionally) a Chrome-trace JSON
//! for `chrome://tracing` / Perfetto.
//!
//! ```text
//! sim_timeline [--model VGG13] [--dataset cifar10|cifar100|imagenet]
//!              [--design low|efficient|max] [--dataflow ws|os|is|rs]
//!              [--phase baseline|bp|gp] [--no-contention]
//!              [--bandwidth N] [--buffer-words N] [--dram-ports N]
//!              [--limit N] [--trace out.json]
//! ```
//!
//! Defaults simulate VGG13 / CIFAR10 / ADA-GP-MAX / WS / Phase GP with
//! DRAM contention enabled (64 words/cycle, 128K-word buffer).
//! `--bandwidth`, `--buffer-words` and `--dram-ports` steer the
//! contention axes; `--no-contention` disables the DRAM channel (and
//! with it all spill traffic). Time stamps in the exported trace are
//! cycles (1 cycle = 1 µs in the viewer's axis).

use adagp_accel::layer_cost::PredictorCostModel;
use adagp_accel::{AcceleratorConfig, AdaGpDesign, Dataflow};
use adagp_nn::models::CnnModel;
use adagp_sim::{model_sim_layers, report, simulate_batch, write_chrome_trace, Phase, SimConfig};
use adagp_sweep::shapes::cached_shapes;
use adagp_sweep::DatasetScale;
use std::path::PathBuf;
use std::process::ExitCode;

struct Options {
    model: CnnModel,
    dataset: DatasetScale,
    design: AdaGpDesign,
    dataflow: Dataflow,
    phase: Phase,
    cfg: SimConfig,
    limit: usize,
    trace: Option<PathBuf>,
}

fn parse_model(raw: &str) -> Result<CnnModel, String> {
    CnnModel::all()
        .into_iter()
        .find(|m| m.name().eq_ignore_ascii_case(raw))
        .ok_or_else(|| {
            let known: Vec<&str> = CnnModel::all().into_iter().map(|m| m.name()).collect();
            format!("unknown model `{raw}` (known: {})", known.join(", "))
        })
}

fn parse_args(args: &[String]) -> Result<Options, String> {
    let mut opt = Options {
        model: CnnModel::Vgg13,
        dataset: DatasetScale::Cifar10,
        design: AdaGpDesign::Max,
        dataflow: Dataflow::WeightStationary,
        phase: Phase::Gp,
        cfg: SimConfig::default(),
        limit: 40,
        trace: None,
    };
    let mut no_contention = false;
    let mut it = args.iter();
    while let Some(a) = it.next() {
        let mut value = |flag: &str| {
            it.next()
                .cloned()
                .ok_or_else(|| format!("{flag} requires a value"))
        };
        match a.as_str() {
            "--model" => opt.model = parse_model(&value("--model")?)?,
            "--dataset" => {
                opt.dataset = match value("--dataset")?.to_ascii_lowercase().as_str() {
                    "cifar10" => DatasetScale::Cifar10,
                    "cifar100" => DatasetScale::Cifar100,
                    "imagenet" => DatasetScale::ImageNet,
                    other => return Err(format!("unknown dataset `{other}`")),
                }
            }
            "--design" => {
                opt.design = match value("--design")?.to_ascii_lowercase().as_str() {
                    "low" => AdaGpDesign::Low,
                    "efficient" => AdaGpDesign::Efficient,
                    "max" => AdaGpDesign::Max,
                    other => return Err(format!("unknown design `{other}`")),
                }
            }
            "--dataflow" => {
                opt.dataflow = match value("--dataflow")?.to_ascii_lowercase().as_str() {
                    "ws" => Dataflow::WeightStationary,
                    "os" => Dataflow::OutputStationary,
                    "is" => Dataflow::InputStationary,
                    "rs" => Dataflow::RowStationary,
                    other => return Err(format!("unknown dataflow `{other}`")),
                }
            }
            "--phase" => {
                opt.phase = match value("--phase")?.to_ascii_lowercase().as_str() {
                    "baseline" => Phase::Baseline,
                    "bp" => Phase::Bp,
                    "gp" => Phase::Gp,
                    other => return Err(format!("unknown phase `{other}`")),
                }
            }
            "--no-contention" => no_contention = true,
            "--bandwidth" => {
                let raw = value("--bandwidth")?;
                let bw: u64 = raw
                    .parse()
                    .map_err(|_| format!("--bandwidth: bad value `{raw}`"))?;
                opt.cfg.dram_words_per_cycle = Some(bw);
            }
            "--buffer-words" => {
                let raw = value("--buffer-words")?;
                let words: u64 = raw
                    .parse()
                    .map_err(|_| format!("--buffer-words: bad value `{raw}`"))?;
                opt.cfg.buffer_words = Some(words);
            }
            "--dram-ports" => {
                let raw = value("--dram-ports")?;
                opt.cfg.dram_ports = raw
                    .parse()
                    .map_err(|_| format!("--dram-ports: bad value `{raw}`"))?;
            }
            "--limit" => {
                let raw = value("--limit")?;
                opt.limit = raw
                    .parse()
                    .map_err(|_| format!("--limit: bad value `{raw}`"))?;
            }
            "--trace" => opt.trace = Some(PathBuf::from(value("--trace")?)),
            "--help" | "-h" => {
                return Err("help".to_string());
            }
            other => return Err(format!("unexpected argument `{other}`")),
        }
    }
    if no_contention {
        // Applied last so it wins regardless of flag order — the same
        // precedence contract `sweep sim` documents and tests.
        opt.cfg.dram_words_per_cycle = None;
        opt.cfg.buffer_words = None;
    }
    Ok(opt)
}

const USAGE: &str = "\
Usage: sim_timeline [--model VGG13] [--dataset cifar10|cifar100|imagenet]
                    [--design low|efficient|max] [--dataflow ws|os|is|rs]
                    [--phase baseline|bp|gp] [--no-contention]
                    [--bandwidth N] [--buffer-words N] [--dram-ports N]
                    [--limit N] [--trace out.json]
";

fn main() -> ExitCode {
    let _trace = adagp_obs::trace_guard_from_env("sim_timeline");
    let args: Vec<String> = std::env::args().skip(1).collect();
    let opt = match parse_args(&args) {
        Ok(o) => o,
        Err(msg) if msg == "help" => {
            print!("{USAGE}");
            return ExitCode::SUCCESS;
        }
        Err(msg) => {
            eprintln!("sim_timeline: {msg}\n{USAGE}");
            return ExitCode::from(2);
        }
    };

    let shapes = cached_shapes(opt.model, opt.dataset.input_scale());
    let layers = model_sim_layers(
        &AcceleratorConfig::default(),
        opt.dataflow,
        &PredictorCostModel::default(),
        &shapes,
        &opt.cfg,
    );
    let design = match opt.phase {
        Phase::Baseline => None,
        _ => Some(opt.design),
    };
    let sim = simulate_batch(opt.phase, design, &layers, &opt.cfg);

    println!(
        "sim_timeline: {} on {} ({} dataflow), one {} batch of {} samples, {} layers",
        opt.model.name(),
        opt.dataset.name(),
        opt.dataflow.name(),
        opt.phase.name(),
        opt.cfg.batch,
        layers.len()
    );
    print!("{}", report::utilization_report(&sim));
    println!();
    print!("{}", report::span_table(&sim.result, opt.limit));

    if let Some(path) = &opt.trace {
        let title = format!(
            "{} {} {} {}",
            opt.model.name(),
            opt.dataset.name(),
            design.map_or("baseline", |d| d.name()),
            opt.phase.name()
        );
        if let Err(e) = write_chrome_trace(path, &sim.result, &title) {
            eprintln!("sim_timeline: write {}: {e}", path.display());
            return ExitCode::from(2);
        }
        println!(
            "\nwrote Chrome trace to {} (load in chrome://tracing or ui.perfetto.dev)",
            path.display()
        );
    }
    ExitCode::SUCCESS
}
