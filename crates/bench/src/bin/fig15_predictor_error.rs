//! Figure 15: predictor MAPE and MSE per VGG13 layer across training
//! epochs.

use adagp_bench::accuracy::{predictor_error_series, TrainBudget};
use adagp_nn::data::DatasetSpec;

fn main() {
    let budget = if adagp_bench::full_budget() {
        TrainBudget {
            epochs: 20,
            ..TrainBudget::full()
        }
    } else {
        TrainBudget {
            epochs: 8,
            ..TrainBudget::quick()
        }
    };
    let spec = DatasetSpec {
        classes: 10,
        channels: 3,
        size: 12,
        train_len: 128,
        test_len: 64,
    };
    let series = predictor_error_series(spec, &budget, 42);

    println!("== Figure 15a: predictor MAPE (%) per layer per epoch ==");
    print!("epoch");
    for l in 0..series.len() {
        print!("  layer{:<2}", l + 1);
    }
    println!();
    for e in 0..budget.epochs {
        print!("{e:>5}");
        for row in &series {
            print!("  {:>7.3}", row[e].0);
        }
        println!();
    }

    println!();
    println!("== Figure 15b: predictor MSE per layer per epoch ==");
    print!("epoch");
    for l in 0..series.len() {
        print!("  layer{:<2}", l + 1);
    }
    println!();
    for e in 0..budget.epochs {
        print!("{e:>5}");
        for row in &series {
            print!("  {:>9.2e}", row[e].1);
        }
        println!();
    }
}
