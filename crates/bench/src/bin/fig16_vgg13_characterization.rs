//! Figure 16: per-layer training-cycle characterization of VGG13 —
//! baseline vs ADA-GP-Efficient split into Warm-up / Phase-BP / Phase-GP.

use adagp_bench::report::render_table;
use adagp_bench::speedup_tables::vgg13_characterization;

fn main() {
    let chars = vgg13_characterization();
    let rows: Vec<Vec<String>> = chars
        .iter()
        .map(|c| {
            vec![
                c.label.clone(),
                format!("{:.3e}", c.baseline),
                format!("{:.3e}", c.warmup),
                format!("{:.3e}", c.phase_bp),
                format!("{:.3e}", c.phase_gp),
                format!("{:.3e}", c.adagp_total()),
                format!("{:.2}x", c.baseline / c.adagp_total()),
            ]
        })
        .collect();
    println!(
        "{}",
        render_table(
            "Figure 16: VGG13 per-layer cycles (baseline vs ADA-GP-Efficient phases)",
            &[
                "Layer",
                "Baseline",
                "Warm-up",
                "Phase-BP",
                "Phase-GP",
                "ADA-GP total",
                "Ratio"
            ],
            &rows,
        )
    );
}
