//! Figure 17: ADA-GP speed-up over the Weight-Stationary baseline for all
//! models × datasets × designs.

use adagp_accel::Dataflow;
use adagp_bench::speedup_tables::print_speedup_figure;

fn main() {
    print_speedup_figure("Figure 17", Dataflow::WeightStationary);
}
