//! Figure 17: ADA-GP speed-up over the Weight-Stationary baseline for all
//! models × datasets × designs.
//!
//! Pass `--csv <path>` to also emit the rows as machine-readable CSV.

use adagp_accel::Dataflow;
use adagp_bench::speedup_tables::run_speedup_figure;

fn main() {
    run_speedup_figure("Figure 17", Dataflow::WeightStationary);
}
