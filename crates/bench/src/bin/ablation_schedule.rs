//! Ablation: phase-schedule ratios (§3.5's accuracy-vs-performance
//! trade-off).
//!
//! Sweeps fixed GP:BP ratios from all-BP to all-GP, reporting the final
//! accuracy (trained at CPU scale) and the analytic accelerator speed-up
//! each ratio would deliver. The paper's annealed schedule sits between
//! the extremes.

use adagp_accel::dataflow::{AcceleratorConfig, Dataflow};
use adagp_accel::designs::AdaGpDesign;
use adagp_accel::speedup::{adagp_training_cycles, baseline_training_cycles, EpochMix};
use adagp_bench::report::render_table;
use adagp_core::trainer::evaluate_accuracy;
use adagp_core::{AdaGp, AdaGpConfig, ScheduleConfig};
use adagp_nn::data::{DatasetSpec, VisionDataset};
use adagp_nn::models::shapes::{model_shapes, InputScale};
use adagp_nn::models::{build_cnn, CnnModel, ModelConfig};
use adagp_nn::optim::Sgd;
use adagp_tensor::Prng;

fn accuracy_with_ratio(ratio: (usize, usize), warmup: usize) -> f32 {
    let spec = DatasetSpec {
        classes: 10,
        channels: 3,
        size: 12,
        train_len: 160,
        test_len: 64,
    };
    let ds = VisionDataset::new(spec, 42);
    let model_cfg = ModelConfig {
        width: 0.0625,
        depth_div: 4,
        classes: spec.classes,
    };
    let mut rng = Prng::seed_from_u64(1);
    let mut model = build_cnn(CnnModel::Vgg13, &model_cfg, 3, spec.size, &mut rng);
    let mut cfg = AdaGpConfig {
        schedule: ScheduleConfig {
            warmup_epochs: warmup,
            ratios: [ratio; 4],
            ..Default::default()
        },
        track_metrics: false,
        ..Default::default()
    };
    cfg.predictor.lr = 1e-3;
    let mut adagp = AdaGp::new(cfg, &mut model, &mut rng);
    let mut opt = Sgd::new(0.01, 0.9);
    for _ in 0..6 {
        for b in 0..16 {
            let (x, y) = ds.train_batch(b, 8);
            adagp.train_batch(&mut model, &mut opt, &x, &y);
        }
        adagp.controller_mut().end_epoch();
    }
    evaluate_accuracy(&mut model, (0..4).map(|b| ds.test_batch(b, 8)))
}

/// Analytic speed-up of a run whose post-warm-up epochs all use one ratio.
fn speedup_with_ratio(gp_fraction: f64) -> f64 {
    let cfg = AcceleratorConfig::default();
    let layers = model_shapes(CnnModel::Vgg13, InputScale::Cifar);
    // Build an epoch mix that spends everything at roughly this fraction.
    let mix = EpochMix {
        warmup: 10,
        stage_4_1: 0,
        stage_3_1: 0,
        stage_2_1: 0,
        stage_1_1: 80,
    };
    // stage_1_1 models 0.5; rescale the GP/BP blend manually instead:
    let base = baseline_training_cycles(&cfg, Dataflow::WeightStationary, &layers, &mix);
    let half = adagp_training_cycles(
        &cfg,
        Dataflow::WeightStationary,
        AdaGpDesign::Max,
        &layers,
        &mix,
    );
    // From the 0.5-mix totals, recover per-batch bp/gp costs and re-blend.
    let total_epochs = mix.total() as f64;
    let b_batch = base / total_epochs;
    // half = warmup * bp + 80 * (0.5 gp + 0.5 bp); bp ≈ b_batch (MAX).
    let gp_batch = ((half - 10.0 * b_batch) / 80.0 - 0.5 * b_batch) / 0.5;
    let blended = 10.0 * b_batch + 80.0 * (gp_fraction * gp_batch + (1.0 - gp_fraction) * b_batch);
    base / blended
}

fn main() {
    let ratios: [(&str, Option<(usize, usize)>, f64); 5] = [
        ("all-BP (baseline)", None, 0.0),
        ("1:1", Some((1, 1)), 0.5),
        ("2:1", Some((2, 1)), 2.0 / 3.0),
        ("4:1 (paper's initial)", Some((4, 1)), 0.8),
        ("all-GP", Some((usize::MAX, 0)), 1.0),
    ];
    let mut rows = Vec::new();
    for (name, ratio, frac) in ratios {
        let acc = match ratio {
            Some(r) => accuracy_with_ratio(r, 2),
            None => accuracy_with_ratio((0, 1), usize::MAX),
        };
        rows.push(vec![
            name.to_string(),
            format!("{acc:.2}%"),
            format!("{:.2}x", speedup_with_ratio(frac)),
        ]);
    }
    println!(
        "{}",
        render_table(
            "Ablation: fixed GP:BP ratios — accuracy vs speed-up (VGG13)",
            &["Schedule", "Accuracy", "Analytic speed-up"],
            &rows,
        )
    );
    println!("The paper's annealed 4:1→1:1 schedule trades between these extremes (§3.5).");
}
