//! `critpath` — critical-path and stall attribution over simulated and
//! measured timelines (`obs::crit`, the `adagp-critpath-v1` schema).
//!
//! ```text
//! critpath sim      [--preset NAME | sim_timeline-style flags] [--json PATH] [--top N]
//! critpath measured [--threshold-us N] [--batches N] [--json PATH] [--top N]
//! critpath diff     [--tolerance F] [--report-only] [--batches N]
//!                   [--json PATH] [--sim-json PATH]
//! ```
//!
//! * `sim` simulates a schedule (one cell via the `sim_timeline` flags,
//!   or every cell × phase of a sweep preset via `--preset`) and walks
//!   the zero-slack chain; every walk asserts the chain length equals
//!   the simulated makespan **bit-exactly** and exits 1 otherwise. With
//!   `--json`, the (last) report is written as `adagp-critpath-v1`.
//! * `measured` runs the pipelined training epoch in-process with span
//!   recording on, folds the recorded lanes into busy/queue-wait/idle
//!   segments (threshold: `--threshold-us`, defaulting to the pool's
//!   queue-wait histogram p95) and prints the same report shape.
//! * `diff` runs both: the measured epoch, then a 3-stage pipeline sim
//!   parameterized by the measured mean stage durations, and pairs each
//!   stage's sim-predicted blame fraction with its measured busy
//!   fraction. The bottleneck stage must agree in name and within
//!   `--tolerance` (default 0.35, the `obs_timeline.rs` band) — exit 1
//!   on disagreement unless `--report-only`.

use adagp_accel::layer_cost::PredictorCostModel;
use adagp_accel::{AcceleratorConfig, AdaGpDesign, Dataflow};
use adagp_core::{AdaGp, AdaGpConfig};
use adagp_nn::containers::Sequential;
use adagp_nn::layers::{Conv2d, Flatten, Linear, Relu};
use adagp_nn::models::CnnModel;
use adagp_nn::optim::Sgd;
use adagp_obs as obs;
use adagp_obs::crit::CritReport;
use adagp_runtime::StageReport;
use adagp_sim::{
    critical_path, model_sim_layers, simulate_batch, Phase, SimBuilder, SimConfig, TaskKind,
    TaskSpec,
};
use adagp_sweep::shapes::cached_shapes;
use adagp_sweep::{presets, DatasetScale};
use adagp_tensor::{init, Prng};
use std::path::PathBuf;
use std::process::ExitCode;

const USAGE: &str = "\
Usage: critpath sim      [--preset NAME] [--model VGG13] [--dataset cifar10|cifar100|imagenet]
                         [--design low|efficient|max] [--dataflow ws|os|is|rs]
                         [--phase baseline|bp|gp] [--no-contention] [--bandwidth N]
                         [--buffer-words N] [--dram-ports N] [--json PATH] [--top N]
       critpath measured [--threshold-us N] [--batches N] [--json PATH] [--top N]
       critpath diff     [--tolerance F] [--report-only] [--batches N]
                         [--json PATH] [--sim-json PATH]
";

struct SimOptions {
    preset: Option<String>,
    model: CnnModel,
    dataset: DatasetScale,
    design: AdaGpDesign,
    dataflow: Dataflow,
    phase: Phase,
    cfg: SimConfig,
    json: Option<PathBuf>,
    top: usize,
}

struct MeasuredOptions {
    threshold_us: Option<u64>,
    batches: usize,
    json: Option<PathBuf>,
    top: usize,
}

struct DiffOptions {
    tolerance: f64,
    report_only: bool,
    batches: usize,
    json: Option<PathBuf>,
    sim_json: Option<PathBuf>,
}

fn parse_model(raw: &str) -> Result<CnnModel, String> {
    CnnModel::all()
        .into_iter()
        .find(|m| m.name().eq_ignore_ascii_case(raw))
        .ok_or_else(|| {
            let known: Vec<&str> = CnnModel::all().into_iter().map(|m| m.name()).collect();
            format!("unknown model `{raw}` (known: {})", known.join(", "))
        })
}

fn parse_sim_args(args: &[String]) -> Result<SimOptions, String> {
    let mut opt = SimOptions {
        preset: None,
        model: CnnModel::Vgg13,
        dataset: DatasetScale::Cifar10,
        design: AdaGpDesign::Max,
        dataflow: Dataflow::WeightStationary,
        phase: Phase::Gp,
        cfg: SimConfig::default(),
        json: None,
        top: 10,
    };
    let mut no_contention = false;
    let mut it = args.iter();
    while let Some(a) = it.next() {
        let mut value = |flag: &str| {
            it.next()
                .cloned()
                .ok_or_else(|| format!("{flag} requires a value"))
        };
        match a.as_str() {
            "--preset" => opt.preset = Some(value("--preset")?),
            "--model" => opt.model = parse_model(&value("--model")?)?,
            "--dataset" => {
                opt.dataset = match value("--dataset")?.to_ascii_lowercase().as_str() {
                    "cifar10" => DatasetScale::Cifar10,
                    "cifar100" => DatasetScale::Cifar100,
                    "imagenet" => DatasetScale::ImageNet,
                    other => return Err(format!("unknown dataset `{other}`")),
                }
            }
            "--design" => {
                opt.design = match value("--design")?.to_ascii_lowercase().as_str() {
                    "low" => AdaGpDesign::Low,
                    "efficient" => AdaGpDesign::Efficient,
                    "max" => AdaGpDesign::Max,
                    other => return Err(format!("unknown design `{other}`")),
                }
            }
            "--dataflow" => {
                opt.dataflow = match value("--dataflow")?.to_ascii_lowercase().as_str() {
                    "ws" => Dataflow::WeightStationary,
                    "os" => Dataflow::OutputStationary,
                    "is" => Dataflow::InputStationary,
                    "rs" => Dataflow::RowStationary,
                    other => return Err(format!("unknown dataflow `{other}`")),
                }
            }
            "--phase" => {
                opt.phase = match value("--phase")?.to_ascii_lowercase().as_str() {
                    "baseline" => Phase::Baseline,
                    "bp" => Phase::Bp,
                    "gp" => Phase::Gp,
                    other => return Err(format!("unknown phase `{other}`")),
                }
            }
            "--no-contention" => no_contention = true,
            "--bandwidth" => {
                let raw = value("--bandwidth")?;
                opt.cfg.dram_words_per_cycle = Some(
                    raw.parse()
                        .map_err(|_| format!("--bandwidth: bad value `{raw}`"))?,
                );
            }
            "--buffer-words" => {
                let raw = value("--buffer-words")?;
                opt.cfg.buffer_words = Some(
                    raw.parse()
                        .map_err(|_| format!("--buffer-words: bad value `{raw}`"))?,
                );
            }
            "--dram-ports" => {
                let raw = value("--dram-ports")?;
                opt.cfg.dram_ports = raw
                    .parse()
                    .map_err(|_| format!("--dram-ports: bad value `{raw}`"))?;
            }
            "--json" => opt.json = Some(PathBuf::from(value("--json")?)),
            "--top" => {
                let raw = value("--top")?;
                opt.top = raw
                    .parse()
                    .map_err(|_| format!("--top: bad value `{raw}`"))?;
            }
            "--help" | "-h" => return Err("help".to_string()),
            other => return Err(format!("unexpected argument `{other}`")),
        }
    }
    if no_contention {
        opt.cfg.dram_words_per_cycle = None;
        opt.cfg.buffer_words = None;
    }
    Ok(opt)
}

fn parse_measured_args(args: &[String]) -> Result<MeasuredOptions, String> {
    let mut opt = MeasuredOptions {
        threshold_us: None,
        batches: 12,
        json: None,
        top: 10,
    };
    let mut it = args.iter();
    while let Some(a) = it.next() {
        let mut value = |flag: &str| {
            it.next()
                .cloned()
                .ok_or_else(|| format!("{flag} requires a value"))
        };
        match a.as_str() {
            "--threshold-us" => {
                let raw = value("--threshold-us")?;
                opt.threshold_us = Some(
                    raw.parse()
                        .map_err(|_| format!("--threshold-us: bad value `{raw}`"))?,
                );
            }
            "--batches" => {
                let raw = value("--batches")?;
                opt.batches = raw
                    .parse()
                    .map_err(|_| format!("--batches: bad value `{raw}`"))?;
            }
            "--json" => opt.json = Some(PathBuf::from(value("--json")?)),
            "--top" => {
                let raw = value("--top")?;
                opt.top = raw
                    .parse()
                    .map_err(|_| format!("--top: bad value `{raw}`"))?;
            }
            "--help" | "-h" => return Err("help".to_string()),
            other => return Err(format!("unexpected argument `{other}`")),
        }
    }
    if opt.batches == 0 {
        return Err("--batches must be positive".into());
    }
    Ok(opt)
}

fn parse_diff_args(args: &[String]) -> Result<DiffOptions, String> {
    let mut opt = DiffOptions {
        tolerance: 0.35,
        report_only: false,
        batches: 12,
        json: None,
        sim_json: None,
    };
    let mut it = args.iter();
    while let Some(a) = it.next() {
        let mut value = |flag: &str| {
            it.next()
                .cloned()
                .ok_or_else(|| format!("{flag} requires a value"))
        };
        match a.as_str() {
            "--tolerance" => {
                let raw = value("--tolerance")?;
                opt.tolerance = raw
                    .parse()
                    .map_err(|_| format!("--tolerance: bad value `{raw}`"))?;
            }
            "--report-only" => opt.report_only = true,
            "--batches" => {
                let raw = value("--batches")?;
                opt.batches = raw
                    .parse()
                    .map_err(|_| format!("--batches: bad value `{raw}`"))?;
            }
            "--json" => opt.json = Some(PathBuf::from(value("--json")?)),
            "--sim-json" => opt.sim_json = Some(PathBuf::from(value("--sim-json")?)),
            "--help" | "-h" => return Err("help".to_string()),
            other => return Err(format!("unexpected argument `{other}`")),
        }
    }
    if opt.batches == 0 {
        return Err("--batches must be positive".into());
    }
    Ok(opt)
}

/// Writes a report as `adagp-critpath-v1`, re-validating it on the way
/// out so a file this binary produced always machine-checks.
fn write_report(path: &PathBuf, report: &CritReport) -> Result<(), String> {
    let json = report.to_json();
    obs::validate_critpath(&json).map_err(|e| format!("self-check failed: {e}"))?;
    std::fs::write(path, json).map_err(|e| format!("write {}: {e}", path.display()))?;
    println!("wrote {} report to {}", report.mode, path.display());
    Ok(())
}

/// Critical-path of one simulated batch, with the bit-exact chain
/// invariant enforced.
fn sim_report(sim: &adagp_sim::BatchSim, title: &str) -> Result<CritReport, String> {
    let report = critical_path(&sim.result, title);
    let chain_sum: u64 = report.chain.iter().map(|c| c.end - c.start).sum();
    if chain_sum != sim.result.makespan {
        return Err(format!(
            "{title}: chain sums to {chain_sum} cycles, makespan is {} — zero-slack walk broken",
            sim.result.makespan
        ));
    }
    obs::validate_critpath(&report.to_json()).map_err(|e| format!("{title}: {e}"))?;
    Ok(report)
}

fn run_sim(opt: &SimOptions) -> Result<(), String> {
    if let Some(name) = &opt.preset {
        let grid = presets::by_name(name).ok_or_else(|| format!("unknown preset `{name}`"))?;
        let cells = grid.expand();
        let mut last: Option<CritReport> = None;
        for spec in &cells {
            let cfg = adagp_sweep::cell_sim_config(spec, &opt.cfg);
            let shapes = cached_shapes(spec.model, spec.dataset.input_scale());
            let layers = model_sim_layers(
                &AcceleratorConfig::default(),
                spec.dataflow,
                &PredictorCostModel::default(),
                &shapes,
                &cfg,
            );
            for (phase, design) in [
                (Phase::Baseline, None),
                (Phase::Bp, Some(spec.design)),
                (Phase::Gp, Some(spec.design)),
            ] {
                let sim = simulate_batch(phase, design, &layers, &cfg);
                let title = format!("{} {}", spec.key(), phase.name());
                let report = sim_report(&sim, &title)?;
                let top = report.blame.first();
                println!(
                    "{} {:<8} makespan {:>12}  chain {:>4} segments  top blame {}",
                    spec.id,
                    phase.name(),
                    report.makespan,
                    report.chain.len(),
                    top.map_or_else(
                        || "-".to_string(),
                        |b| format!("{}/{} {:.1}%", b.lane, b.kind, b.fraction * 100.0)
                    ),
                );
                last = Some(report);
            }
        }
        println!(
            "critpath sim: {} cells x 3 phases, every chain bit-exact against its makespan",
            cells.len()
        );
        if let Some(path) = &opt.json {
            write_report(path, &last.ok_or("preset expanded to no cells")?)?;
        }
    } else {
        let shapes = cached_shapes(opt.model, opt.dataset.input_scale());
        let layers = model_sim_layers(
            &AcceleratorConfig::default(),
            opt.dataflow,
            &PredictorCostModel::default(),
            &shapes,
            &opt.cfg,
        );
        let design = match opt.phase {
            Phase::Baseline => None,
            _ => Some(opt.design),
        };
        let sim = simulate_batch(opt.phase, design, &layers, &opt.cfg);
        let title = format!(
            "{} {} {} {}",
            opt.model.name(),
            opt.dataset.name(),
            design.map_or("baseline", |d| d.name()),
            opt.phase.name()
        );
        let report = sim_report(&sim, &title)?;
        print!("{}", report.render(opt.top));
        if let Some(path) = &opt.json {
            write_report(path, &report)?;
        }
    }
    Ok(())
}

/// Runs one pipelined training epoch with span recording enabled and
/// returns the stage reports plus the recorder snapshot (the same
/// workload `obs_timeline.rs` locks the measured-vs-sim tolerance on).
fn recorded_epoch(batches: usize) -> (Vec<StageReport>, obs::TraceSnapshot) {
    obs::set_enabled(true);
    let mut rng = Prng::seed_from_u64(5);
    let mut m = Sequential::new();
    m.push(Conv2d::new(3, 8, 3, 1, 1, true, &mut rng));
    m.push(Relu::new());
    m.push(Flatten::new());
    m.push(Linear::new(8 * 16 * 16, 10, true, &mut rng));
    let mut adagp = AdaGp::new(AdaGpConfig::default(), &mut m, &mut rng);
    let mut opt = Sgd::new(0.02, 0.9);
    let mut data_rng = Prng::seed_from_u64(17);
    let data: Vec<(adagp_tensor::Tensor, Vec<usize>)> = (0..batches)
        .map(|b| {
            (
                init::uniform(&[4, 3, 16, 16], -1.0, 1.0, &mut data_rng),
                vec![b % 10; 4],
            )
        })
        .collect();
    let report = adagp.train_epoch_pipelined(&mut m, &mut opt, batches, 3, |b| data[b].clone());
    obs::set_enabled(false);
    (report.stages, obs::snapshot())
}

/// Folds the recorded epoch into the measured report: lanes renamed to
/// their dominant pipeline stage, gaps classified by the explicit
/// threshold or the pool's queue-wait p95.
fn measured_report(
    snap: &obs::TraceSnapshot,
    threshold_us: Option<u64>,
    title: &str,
) -> (CritReport, Option<u64>) {
    let threshold_ns = threshold_us
        .map(|us| us * 1000)
        .or_else(obs::measured_gap_threshold_ns);
    let staged = obs::relabel_lanes_by_cat(snap, "stage");
    (
        obs::analyze_snapshot(&staged, threshold_ns, title),
        threshold_ns,
    )
}

fn run_measured(opt: &MeasuredOptions) -> Result<(), String> {
    let (_stages, snap) = recorded_epoch(opt.batches);
    let (report, threshold_ns) = measured_report(
        &snap,
        opt.threshold_us,
        &format!("pipelined epoch ({} batches, measured)", opt.batches),
    );
    match threshold_ns {
        Some(t) => println!("gap classifier threshold: {t} ns"),
        None => println!("gap classifier threshold: none (all gaps idle)"),
    }
    print!("{}", report.render(opt.top));
    if report.lanes.is_empty() {
        return Err("no measured lanes recorded".into());
    }
    if let Some(path) = &opt.json {
        write_report(path, &report)?;
    }
    Ok(())
}

fn run_diff(opt: &DiffOptions) -> Result<bool, String> {
    let (stages, snap) = recorded_epoch(opt.batches);
    let (measured, _) = measured_report(
        &snap,
        None,
        &format!("pipelined epoch ({} batches, measured)", opt.batches),
    );

    // The sim side: the same idealized 3-stage pipeline obs_timeline.rs
    // checks occupancies against, parameterized by the measured mean
    // stage durations (nanoseconds as cycles).
    let mean_ns = |r: &StageReport| (r.busy.as_nanos() as u64 / r.items.max(1)).max(1);
    let durations: Vec<u64> = stages.iter().map(mean_ns).collect();
    let mut b = SimBuilder::new();
    let resources: Vec<_> = stages
        .iter()
        .map(|r| b.add_resource(r.name.clone(), 1))
        .collect();
    let mut prev: Vec<Option<usize>> = vec![None; stages.len()];
    for batch in 0..opt.batches {
        for (stage, (&resource, &duration)) in resources.iter().zip(&durations).enumerate() {
            let mut deps = Vec::new();
            if stage > 0 {
                deps.push(prev[stage - 1].expect("upstream task"));
            }
            prev[stage] = Some(b.add_task(TaskSpec {
                label: format!("{} b{batch}", stages[stage].name),
                kind: TaskKind::Forward,
                layer: None,
                resource: Some(resource),
                duration,
                deps,
                buffer_delta: 0,
            }));
        }
    }
    let result = b.simulate();
    let sim = critical_path(
        &result,
        &format!("pipelined epoch ({} batches, sim)", opt.batches),
    );
    let chain_sum: u64 = sim.chain.iter().map(|c| c.end - c.start).sum();
    if chain_sum != result.makespan {
        return Err(format!(
            "sim chain sums to {chain_sum}, makespan is {} — zero-slack walk broken",
            result.makespan
        ));
    }

    // Pair per stage: the sim column is the stage's share of the
    // simulated critical path; the measured column is the stage lane's
    // busy share of its extent. For the bottleneck stage both approach
    // its occupancy, which is where the verdict anchors.
    println!(
        "critpath diff: {} batches; stage blame fractions (sim chain share vs measured busy share)",
        opt.batches
    );
    println!(
        "  {:<14} {:>10} {:>10} {:>8}",
        "stage", "sim", "measured", "delta"
    );
    for stage in &stages {
        let s = sim.lane_fraction(&stage.name);
        let m = measured
            .lanes
            .iter()
            .find(|l| l.name == stage.name)
            .map_or(0.0, |l| {
                if l.extent == 0 {
                    0.0
                } else {
                    l.busy as f64 / l.extent as f64
                }
            });
        println!(
            "  {:<14} {:>9.1}% {:>9.1}% {:>+7.1}%",
            stage.name,
            s * 100.0,
            m * 100.0,
            (s - m) * 100.0
        );
    }

    let sim_bottleneck = stages
        .iter()
        .max_by(|a, b| {
            sim.lane_fraction(&a.name)
                .partial_cmp(&sim.lane_fraction(&b.name))
                .unwrap()
        })
        .expect("stages");
    let measured_bottleneck = measured
        .lanes
        .iter()
        .filter(|l| stages.iter().any(|s| s.name == l.name))
        .max_by(|a, b| {
            let occ = |l: &&obs::MeasuredLane| {
                if l.extent == 0 {
                    0.0
                } else {
                    l.busy as f64 / l.extent as f64
                }
            };
            occ(a).partial_cmp(&occ(b)).unwrap()
        })
        .ok_or("no measured lane carries a stage name")?;
    let s_frac = sim.lane_fraction(&sim_bottleneck.name);
    let m_frac = if measured_bottleneck.extent == 0 {
        0.0
    } else {
        measured_bottleneck.busy as f64 / measured_bottleneck.extent as f64
    };
    let agree =
        sim_bottleneck.name == measured_bottleneck.name && (s_frac - m_frac).abs() <= opt.tolerance;
    println!(
        "bottleneck: sim says {} ({:.1}%), measured says {} ({:.1}%) -> {}",
        sim_bottleneck.name,
        s_frac * 100.0,
        measured_bottleneck.name,
        m_frac * 100.0,
        if agree { "agree" } else { "DISAGREE" }
    );

    if let Some(path) = &opt.json {
        write_report(path, &measured)?;
    }
    if let Some(path) = &opt.sim_json {
        write_report(path, &sim)?;
    }
    Ok(agree)
}

fn main() -> ExitCode {
    let _trace = obs::trace_guard_from_env("critpath");
    let args: Vec<String> = std::env::args().skip(1).collect();
    let (cmd, rest) = match args.split_first() {
        Some((cmd, rest)) => (cmd.as_str(), rest),
        None => {
            eprint!("{USAGE}");
            return ExitCode::from(2);
        }
    };
    let outcome = match cmd {
        "sim" => parse_sim_args(rest).and_then(|opt| run_sim(&opt).map(|()| true)),
        "measured" => parse_measured_args(rest).and_then(|opt| run_measured(&opt).map(|()| true)),
        "diff" => parse_diff_args(rest).and_then(|opt| {
            let report_only = opt.report_only;
            run_diff(&opt).map(|agree| {
                if !agree && report_only {
                    println!("report-only: disagreement not enforced");
                }
                agree || report_only
            })
        }),
        "--help" | "-h" | "help" => {
            print!("{USAGE}");
            return ExitCode::SUCCESS;
        }
        other => {
            eprintln!("critpath: unknown subcommand `{other}`\n{USAGE}");
            return ExitCode::from(2);
        }
    };
    match outcome {
        Ok(true) => ExitCode::SUCCESS,
        Ok(false) => ExitCode::FAILURE,
        Err(msg) if msg == "help" => {
            print!("{USAGE}");
            ExitCode::SUCCESS
        }
        Err(msg) => {
            eprintln!("critpath: {msg}\n{USAGE}");
            ExitCode::from(2)
        }
    }
}
