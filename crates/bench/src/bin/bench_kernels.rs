//! Kernel-speed point for the perf trajectory: times the `*_large`
//! acceptance shapes (the same ones the criterion bench uses) and writes
//! `BENCH_kernels.json` in the `adagp-bench-snapshot-v1` schema.
//!
//! Regenerate the committed snapshot from the repo root with:
//!
//! ```text
//! cargo run --release -p adagp-bench --bin bench_kernels
//! ```
//!
//! Usage: `bench_kernels [--out <path>] [--reps <n>]`.
//!
//! Each workload runs once unrecorded as warm-up (pool spin-up, page
//! cache), then `reps` timed reps; the snapshot stores `{median_us,
//! mad_us, min_us}` per workload, which is exactly what `perf_gate`
//! compares across revisions. Spans stay disabled — this point measures
//! kernel speed, not observability overhead (that is `BENCH_obs.json`).

use adagp_obs::bench::{EnvBlock, Snapshot, WorkloadStats};
use adagp_tensor::conv::{conv2d, conv2d_backward_data, conv2d_backward_weight, Conv2dParams};
use adagp_tensor::{init, Prng};
use std::hint::black_box;
use std::time::Instant;

const REGENERATE: &str = "cargo run --release -p adagp-bench --bin bench_kernels";
const DEFAULT_REPS: usize = 7;

fn usage() -> ! {
    eprintln!("usage: bench_kernels [--out <path>] [--reps <n>]");
    std::process::exit(2);
}

fn measure(snap: &mut Snapshot, reps: usize, name: &str, f: impl Fn()) {
    f(); // warm-up rep, untimed
    let samples: Vec<u64> = (0..reps)
        .map(|_| {
            let t = Instant::now();
            f();
            t.elapsed().as_micros() as u64
        })
        .collect();
    let stats = WorkloadStats::from_samples(&samples);
    println!(
        "{name:<22} median {:>8} us   mad {:>6} us   min {:>8} us",
        stats.median_us, stats.mad_us, stats.min_us
    );
    snap.push_workload(name, stats);
}

fn main() {
    let mut out_path = "BENCH_kernels.json".to_string();
    let mut reps = DEFAULT_REPS;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--out" => out_path = args.next().unwrap_or_else(|| usage()),
            "--reps" => {
                reps = args
                    .next()
                    .and_then(|v| v.parse().ok())
                    .filter(|&r| r > 0)
                    .unwrap_or_else(|| usage())
            }
            _ => usage(),
        }
    }

    let mut rng = Prng::seed_from_u64(0);
    let p = Conv2dParams::new(1, 1);
    let xl = init::gaussian(&[8, 32, 32, 32], 0.0, 1.0, &mut rng);
    let wl = init::gaussian(&[64, 32, 3, 3], 0.0, 0.1, &mut rng);
    let yl = conv2d(&xl, &wl, None, &p);
    let al = init::gaussian(&[256, 256], 0.0, 1.0, &mut rng);
    let bl = init::gaussian(&[256, 256], 0.0, 1.0, &mut rng);

    let env = EnvBlock::current(adagp_runtime::pool().size());
    let mut snap = Snapshot::new("kernels", REGENERATE, reps as u64, env);
    measure(&mut snap, reps, "conv2d_fw_large", || {
        black_box(conv2d(black_box(&xl), black_box(&wl), None, &p));
    });
    measure(&mut snap, reps, "conv2d_bw_data_large", || {
        black_box(conv2d_backward_data(
            black_box(&yl),
            black_box(&wl),
            32,
            32,
            &p,
        ));
    });
    measure(&mut snap, reps, "conv2d_bw_weight_large", || {
        black_box(conv2d_backward_weight(
            black_box(&xl),
            black_box(&yl),
            3,
            3,
            &p,
        ));
    });
    measure(&mut snap, reps, "matmul_large_256", || {
        black_box(black_box(&al).matmul(black_box(&bl)));
    });

    snap.sanity().expect("freshly measured snapshot is sane");
    snap.write(out_path.as_ref())
        .unwrap_or_else(|e| panic!("write {out_path}: {e}"));
    println!("wrote {out_path} (label {})", snap.label);
}
