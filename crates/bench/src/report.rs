//! Plain-text table rendering and CSV emission for the harness binaries.

use std::io::Write;
use std::path::{Path, PathBuf};

/// Renders a table with a header row and aligned columns.
pub fn render_table(title: &str, header: &[&str], rows: &[Vec<String>]) -> String {
    let mut widths: Vec<usize> = header.iter().map(|h| h.len()).collect();
    for row in rows {
        for (i, cell) in row.iter().enumerate() {
            if i < widths.len() {
                widths[i] = widths[i].max(cell.len());
            }
        }
    }
    let mut out = String::new();
    out.push_str(&format!("== {title} ==\n"));
    let fmt_row = |cells: &[String], widths: &[usize]| -> String {
        cells
            .iter()
            .zip(widths.iter())
            .map(|(c, w)| format!("{c:<w$}"))
            .collect::<Vec<_>>()
            .join("  ")
    };
    let header_cells: Vec<String> = header.iter().map(|h| h.to_string()).collect();
    out.push_str(&fmt_row(&header_cells, &widths));
    out.push('\n');
    out.push_str(&"-".repeat(widths.iter().sum::<usize>() + 2 * widths.len()));
    out.push('\n');
    for row in rows {
        out.push_str(&fmt_row(row, &widths));
        out.push('\n');
    }
    out
}

/// One typed CSV cell. Floats are rendered at the sweep store's fixed
/// precision (never shortest-round-trip `Display`), so CSV emitted by the
/// harness is byte-stable across runs and machines — a prerequisite for
/// meaningful `sweep diff`s of committed run files.
#[derive(Debug, Clone, PartialEq)]
pub enum Cell {
    /// Verbatim text (escaped on write if needed).
    Text(String),
    /// Fixed-precision float.
    Float(f64),
    /// Unsigned integer.
    Int(u64),
}

impl Cell {
    /// Renders the cell to its CSV text (before escaping).
    pub fn render(&self) -> String {
        match self {
            Cell::Text(s) => s.clone(),
            // One precision definition for the whole harness: the sweep
            // store's.
            Cell::Float(v) => adagp_sweep::store::csv_float(*v),
            Cell::Int(i) => i.to_string(),
        }
    }
}

impl From<String> for Cell {
    fn from(s: String) -> Self {
        Cell::Text(s)
    }
}

impl From<&str> for Cell {
    fn from(s: &str) -> Self {
        Cell::Text(s.to_string())
    }
}

impl From<f64> for Cell {
    fn from(v: f64) -> Self {
        Cell::Float(v)
    }
}

impl From<u64> for Cell {
    fn from(v: u64) -> Self {
        Cell::Int(v)
    }
}

/// Writes a header plus rows as RFC-4180-ish CSV (fields containing a
/// comma, quote or newline are quoted; quotes are doubled). Float cells
/// are written at fixed precision — see [`Cell`].
///
/// # Errors
///
/// Returns any I/O error from creating or writing the file.
pub fn write_csv(path: &Path, header: &[&str], rows: &[Vec<Cell>]) -> std::io::Result<()> {
    let escape = |cell: &str| -> String {
        if cell.contains(',') || cell.contains('"') || cell.contains('\n') {
            format!("\"{}\"", cell.replace('"', "\"\""))
        } else {
            cell.to_string()
        }
    };
    let mut f = std::fs::File::create(path)?;
    writeln!(
        f,
        "{}",
        header
            .iter()
            .map(|h| escape(h))
            .collect::<Vec<_>>()
            .join(",")
    )?;
    for row in rows {
        writeln!(
            f,
            "{}",
            row.iter()
                .map(|c| escape(&c.render()))
                .collect::<Vec<_>>()
                .join(",")
        )?;
    }
    Ok(())
}

/// Parses `--csv <path>` from the process arguments (the machine-readable
/// output flag shared by the fig17–19 binaries).
///
/// # Panics
///
/// Panics with a usage message if `--csv` is present without a path.
pub fn csv_path_from_args() -> Option<PathBuf> {
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        if a == "--csv" {
            let path = args
                .next()
                .unwrap_or_else(|| panic!("--csv requires a path argument (usage: --csv <path>)"));
            return Some(PathBuf::from(path));
        }
    }
    None
}

/// Formats an `f64` with 2 decimal places.
pub fn f2(v: f64) -> String {
    format!("{v:.2}")
}

/// Formats an `f64` with 3 decimal places.
pub fn f3(v: f64) -> String {
    format!("{v:.3}")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_contains_all_cells() {
        let t = render_table(
            "T",
            &["model", "speedup"],
            &[
                vec!["VGG13".into(), "1.47".into()],
                vec!["ResNet50".into(), "1.45".into()],
            ],
        );
        assert!(t.contains("VGG13") && t.contains("1.45") && t.contains("== T =="));
    }

    #[test]
    fn columns_align() {
        let t = render_table("x", &["a"], &[vec!["longvalue".into()]]);
        assert!(t.contains("longvalue"));
    }

    #[test]
    fn csv_roundtrip_with_escaping() {
        let path = std::env::temp_dir().join(format!("adagp-csv-{}.csv", std::process::id()));
        write_csv(
            &path,
            &["model", "note"],
            &[
                vec!["VGG13".into(), "plain".into()],
                vec!["Res,Net".into(), "has \"quotes\"".into()],
            ],
        )
        .unwrap();
        let got = std::fs::read_to_string(&path).unwrap();
        assert_eq!(
            got,
            "model,note\nVGG13,plain\n\"Res,Net\",\"has \"\"quotes\"\"\"\n"
        );
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn float_cells_have_fixed_precision() {
        // 0.3 printed via shortest-round-trip Display would be "0.3"; 1/3
        // would be "0.3333333333333333". Fixed precision pins both.
        assert_eq!(Cell::Float(0.3).render(), "0.300000");
        assert_eq!(Cell::Float(1.0 / 3.0).render(), "0.333333");
        assert_eq!(Cell::Float(2.0).render(), "2.000000");
        assert_eq!(Cell::Int(7).render(), "7");
        let path = std::env::temp_dir().join(format!("adagp-csvf-{}.csv", std::process::id()));
        write_csv(&path, &["x"], &[vec![Cell::Float(1.0 / 3.0)]]).unwrap();
        assert_eq!(std::fs::read_to_string(&path).unwrap(), "x\n0.333333\n");
        std::fs::remove_file(&path).ok();
    }
}
