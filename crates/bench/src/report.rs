//! Plain-text table rendering for the harness binaries.

/// Renders a table with a header row and aligned columns.
pub fn render_table(title: &str, header: &[&str], rows: &[Vec<String>]) -> String {
    let mut widths: Vec<usize> = header.iter().map(|h| h.len()).collect();
    for row in rows {
        for (i, cell) in row.iter().enumerate() {
            if i < widths.len() {
                widths[i] = widths[i].max(cell.len());
            }
        }
    }
    let mut out = String::new();
    out.push_str(&format!("== {title} ==\n"));
    let fmt_row = |cells: &[String], widths: &[usize]| -> String {
        cells
            .iter()
            .zip(widths.iter())
            .map(|(c, w)| format!("{c:<w$}"))
            .collect::<Vec<_>>()
            .join("  ")
    };
    let header_cells: Vec<String> = header.iter().map(|h| h.to_string()).collect();
    out.push_str(&fmt_row(&header_cells, &widths));
    out.push('\n');
    out.push_str(&"-".repeat(widths.iter().sum::<usize>() + 2 * widths.len()));
    out.push('\n');
    for row in rows {
        out.push_str(&fmt_row(row, &widths));
        out.push('\n');
    }
    out
}

/// Formats an `f64` with 2 decimal places.
pub fn f2(v: f64) -> String {
    format!("{v:.2}")
}

/// Formats an `f64` with 3 decimal places.
pub fn f3(v: f64) -> String {
    format!("{v:.3}")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_contains_all_cells() {
        let t = render_table(
            "T",
            &["model", "speedup"],
            &[
                vec!["VGG13".into(), "1.47".into()],
                vec!["ResNet50".into(), "1.45".into()],
            ],
        );
        assert!(t.contains("VGG13") && t.contains("1.45") && t.contains("== T =="));
    }

    #[test]
    fn columns_align() {
        let t = render_table("x", &["a"], &[vec!["longvalue".into()]]);
        assert!(t.contains("longvalue"));
    }
}
