//! Analytic speed-up/energy experiment logic (Figures 16–21, §6.6.1).
//!
//! Since the sweep engine landed, the fig17–19 binaries are thin
//! *presets* over `adagp_sweep`: [`run_speedup_figure`] expands the
//! figure's grid, executes it in parallel on the shared runtime pool, and
//! pivots the cells back into the paper's per-dataset panels. The numbers
//! are identical to what the standalone per-figure loops produced — the
//! engine calls the same `adagp_accel` model functions on the same shared
//! shape tables (`crate::model_grid`), which the golden test in
//! `tests/sweep_golden.rs` pins down.

use crate::model_grid::{cifar_shapes, imagenet_shapes, vgg13_conv_shapes};
use adagp_accel::dataflow::{AcceleratorConfig, Dataflow};
use adagp_accel::designs::AdaGpDesign;
use adagp_accel::energy::{adagp_energy_joules, baseline_energy_joules, EnergyConfig};
use adagp_accel::layer_cost::{model_costs, PredictorCostModel};
use adagp_accel::speedup::{geomean, EpochMix, MODEL_BATCH};
use adagp_accel::timeline::{characterize_layers, LayerCharacterization};
use adagp_nn::models::shapes::LayerShape;
use adagp_nn::models::CnnModel;
use adagp_pipeline::{PipelineConfig, PipelineScheme};
use adagp_sweep::{presets, runner, GridSpec, PhaseSchedule, SweepRun};
use serde::{Deserialize, Serialize};

pub use crate::model_grid::{transformer_shapes, yolo_shapes};
pub use adagp_sweep::DatasetScale;

/// One row of a Figures 17–19 speed-up table.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SpeedupRow {
    /// Model name.
    pub model: String,
    /// ADA-GP-LOW speed-up.
    pub low: f64,
    /// ADA-GP-Efficient speed-up.
    pub efficient: f64,
    /// ADA-GP-MAX speed-up.
    pub max: f64,
}

/// The single-dataset slice of a figure grid (engine form of one panel).
fn panel_grid(df: Dataflow, dataset: DatasetScale) -> GridSpec {
    GridSpec {
        name: format!("panel-{}-{}", df.name(), dataset.name()),
        models: CnnModel::all().to_vec(),
        datasets: vec![dataset],
        designs: AdaGpDesign::all().to_vec(),
        dataflows: vec![df],
        schedules: vec![PhaseSchedule::Paper],
        bandwidths: vec![None],
        buffers: vec![None],
    }
}

/// Pivots one dataset's cells of a figure run into the paper's table rows
/// (one row per model, designs as columns) and appends the geomean row.
fn rows_from_run(run: &SweepRun, dataset: DatasetScale) -> Vec<SpeedupRow> {
    let mut rows: Vec<SpeedupRow> = Vec::new();
    for cell in &run.cells {
        if cell.spec.dataset != dataset {
            continue;
        }
        if cell.spec.design == AdaGpDesign::Low {
            rows.push(SpeedupRow {
                model: cell.spec.model.name().to_string(),
                low: 0.0,
                efficient: 0.0,
                max: 0.0,
            });
        }
        let row = rows.last_mut().expect("LOW cell comes first per model");
        match cell.spec.design {
            AdaGpDesign::Low => row.low = cell.metrics.speedup,
            AdaGpDesign::Efficient => row.efficient = cell.metrics.speedup,
            AdaGpDesign::Max => row.max = cell.metrics.speedup,
        }
    }
    let g = |f: &dyn Fn(&SpeedupRow) -> f64| geomean(&rows.iter().map(f).collect::<Vec<_>>());
    rows.push(SpeedupRow {
        model: "Geomean".to_string(),
        low: g(&|r| r.low),
        efficient: g(&|r| r.efficient),
        max: g(&|r| r.max),
    });
    rows
}

/// Speed-up rows for one dataflow and dataset (one panel of Figs 17–19),
/// plus the geomean row — a single-panel sweep through the grid engine.
pub fn speedup_rows(df: Dataflow, dataset: DatasetScale) -> Vec<SpeedupRow> {
    rows_from_run(&runner::run_grid(&panel_grid(df, dataset)), dataset)
}

/// Figure 16: per-layer characterization of VGG13's ten conv layers under
/// ADA-GP-Efficient.
pub fn vgg13_characterization() -> Vec<LayerCharacterization> {
    let cfg = AcceleratorConfig::default();
    let layers = vgg13_conv_shapes();
    let costs = model_costs(
        &cfg,
        Dataflow::WeightStationary,
        &PredictorCostModel::default(),
        &layers,
        MODEL_BATCH,
    );
    let labels: Vec<String> = layers.iter().map(|l| l.label.clone()).collect();
    let mix = EpochMix::paper();
    // Average GP fraction over the post-warm-up epochs.
    let post_epochs: usize = mix.total() - mix.warmup;
    let gp_frac = mix
        .stages()
        .iter()
        .skip(1)
        .map(|&(g, e)| g * e as f64)
        .sum::<f64>()
        / post_epochs as f64;
    characterize_layers(
        &labels,
        &costs,
        AdaGpDesign::Efficient,
        mix.warmup as f64 / mix.total() as f64,
        gp_frac,
    )
}

/// Figure 20: per-model ADA-GP speed-up over each pipeline scheme, with
/// the predictor latency ratio α/FW taken from the cycle model.
pub fn pipeline_speedup_rows(scheme: PipelineScheme) -> Vec<(String, f64)> {
    let cfg = AcceleratorConfig::default();
    let pcfg = PipelineConfig::default();
    let mut rows: Vec<(String, f64)> = CnnModel::all()
        .iter()
        .map(|&m| {
            let layers = imagenet_shapes(m);
            // Each device runs one micro-batch (mini-batch / devices) of a
            // quarter of the layers, so the predictor latency is weighed
            // against a per-device, per-micro-batch forward slice.
            let micro_batch = MODEL_BATCH / pcfg.devices;
            let costs = model_costs(
                &cfg,
                Dataflow::WeightStationary,
                &PredictorCostModel::default(),
                &layers,
                micro_batch,
            );
            let fw: u64 = costs.iter().map(|c| c.fw).sum();
            let alpha: u64 = costs.iter().map(|c| c.alpha).sum();
            let alpha_ratio = pcfg.devices as f64 * alpha as f64 / fw as f64;
            (
                m.name().to_string(),
                scheme.adagp_speedup(&pcfg, alpha_ratio),
            )
        })
        .collect();
    let g = geomean(&rows.iter().map(|(_, s)| *s).collect::<Vec<_>>());
    rows.push(("Geomean".to_string(), g));
    rows
}

/// Figure 21: memory energy (J) for baseline / Efficient / MAX per model.
pub fn energy_rows() -> Vec<(String, f64, f64, f64)> {
    let cfg = EnergyConfig::default();
    let mix = EpochMix::paper();
    CnnModel::all()
        .iter()
        .map(|&m| {
            let layers = cifar_shapes(m);
            (
                m.name().to_string(),
                baseline_energy_joules(&cfg, &layers, &mix),
                adagp_energy_joules(&cfg, &layers, &mix, AdaGpDesign::Efficient),
                adagp_energy_joules(&cfg, &layers, &mix, AdaGpDesign::Max),
            )
        })
        .collect()
}

/// Prints one of Figures 17–19 from an executed figure run: speed-up
/// tables for every dataset panel.
fn print_speedup_run(figure: &str, df: Dataflow, run: &SweepRun) {
    use crate::report::{f2, render_table};
    for dataset in DatasetScale::all() {
        let rows: Vec<Vec<String>> = rows_from_run(run, dataset)
            .iter()
            .map(|r| vec![r.model.clone(), f2(r.low), f2(r.efficient), f2(r.max)])
            .collect();
        println!(
            "{}",
            render_table(
                &format!(
                    "{figure}: speed-up over baseline ({} dataflow), {} dataset",
                    df.name(),
                    dataset.name()
                ),
                &["Model", "ADA-GP-LOW", "ADA-GP-Efficient", "ADA-GP-MAX"],
                &rows,
            )
        );
    }
}

/// Prints one of Figures 17–19 (runs the figure's grid through the sweep
/// engine first).
pub fn print_speedup_figure(figure: &str, df: Dataflow) {
    print_speedup_run(figure, df, &runner::run_grid(&presets::speedup_figure(df)));
}

/// CSV header shared by the fig17–19 speed-up exports.
pub const SPEEDUP_CSV_HEADER: [&str; 6] = [
    "dataflow",
    "dataset",
    "model",
    "adagp_low",
    "adagp_efficient",
    "adagp_max",
];

/// Flattens an executed figure run into the fig17–19 CSV layout:
/// `(dataflow, dataset, model, low, efficient, max)` records, geomean
/// rows included.
fn csv_rows_from_run(df: Dataflow, run: &SweepRun) -> Vec<Vec<crate::report::Cell>> {
    let mut rows = Vec::new();
    for dataset in DatasetScale::all() {
        for r in rows_from_run(run, dataset) {
            rows.push(vec![
                df.name().into(),
                dataset.name().into(),
                r.model.clone().into(),
                r.low.into(),
                r.efficient.into(),
                r.max.into(),
            ]);
        }
    }
    rows
}

/// Machine-readable rows for one of Figures 17–19: every dataset panel
/// flattened into `(dataflow, dataset, model, low, efficient, max)`
/// records. Float cells carry full precision; `report::write_csv` fixes
/// the decimal places. (This is the figure's presentation layout — for
/// files that `sweep diff` can consume, use `sweep run fig17-ws --csv`,
/// which writes the store's cell-per-row schema.)
pub fn speedup_figure_csv_rows(df: Dataflow) -> Vec<Vec<crate::report::Cell>> {
    csv_rows_from_run(df, &runner::run_grid(&presets::speedup_figure(df)))
}

/// Shared driver for the fig17–19 binaries: one sweep-engine run of the
/// figure's preset grid, printed as the pretty panels and, when `--csv
/// <path>` was passed on the command line, written as CSV too.
pub fn run_speedup_figure(figure: &str, df: Dataflow) {
    let run = runner::run_grid(&presets::speedup_figure(df));
    print_speedup_run(figure, df, &run);
    if let Some(path) = crate::report::csv_path_from_args() {
        let rows = csv_rows_from_run(df, &run);
        match crate::report::write_csv(&path, &SPEEDUP_CSV_HEADER, &rows) {
            Ok(()) => println!("wrote {} rows to {}", rows.len(), path.display()),
            Err(e) => {
                eprintln!("failed to write CSV to {}: {e}", path.display());
                std::process::exit(1);
            }
        }
    }
}

/// Training cycles (baseline, ADA-GP) for an arbitrary shape list under a
/// design and the paper's epoch mix — used for the cycle columns of
/// Tables 2–3.
pub fn cycle_pair(layers: &[LayerShape], design: AdaGpDesign) -> (f64, f64) {
    let cfg = AcceleratorConfig::default();
    let mix = EpochMix::paper();
    (
        adagp_accel::speedup::baseline_training_cycles(
            &cfg,
            Dataflow::WeightStationary,
            layers,
            &mix,
        ),
        adagp_accel::speedup::adagp_training_cycles(
            &cfg,
            Dataflow::WeightStationary,
            design,
            layers,
            &mix,
        ),
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::report::Cell;

    #[test]
    fn speedup_rows_cover_13_models_plus_geomean() {
        let rows = speedup_rows(Dataflow::WeightStationary, DatasetScale::Cifar10);
        assert_eq!(rows.len(), 14);
        assert_eq!(rows.last().unwrap().model, "Geomean");
        for r in &rows {
            assert!(r.max >= r.efficient && r.efficient >= r.low, "{}", r.model);
            assert!(r.max > 1.0 && r.max < 2.0, "{}: {}", r.model, r.max);
        }
    }

    #[test]
    fn imagenet_geomean_at_least_cifar() {
        // Figure 17: ImageNet average (1.48) ≥ CIFAR average (1.46).
        let c = speedup_rows(Dataflow::WeightStationary, DatasetScale::Cifar10);
        let i = speedup_rows(Dataflow::WeightStationary, DatasetScale::ImageNet);
        assert!(i.last().unwrap().max >= c.last().unwrap().max - 0.02);
    }

    #[test]
    fn csv_rows_flatten_every_dataset_panel() {
        let rows = speedup_figure_csv_rows(Dataflow::WeightStationary);
        // 3 datasets × (13 models + geomean).
        assert_eq!(rows.len(), 3 * 14);
        assert!(rows.iter().all(|r| r.len() == SPEEDUP_CSV_HEADER.len()));
        let df_name = Dataflow::WeightStationary.name();
        assert!(
            rows.iter().all(|r| r[0] == Cell::Text(df_name.to_string())),
            "dataflow column"
        );
        // Numeric columns render at fixed precision and parse back.
        for r in &rows {
            for v in &r[3..6] {
                assert!(matches!(v, Cell::Float(_)));
                let text = v.render();
                let (_, decimals) = text.split_once('.').expect("fixed point");
                assert_eq!(decimals.len(), adagp_sweep::store::CSV_FLOAT_DECIMALS);
                text.parse::<f64>().expect("numeric CSV cell");
            }
        }
    }

    #[test]
    fn characterization_has_ten_layers() {
        let ch = vgg13_characterization();
        assert_eq!(ch.len(), 10);
        assert!(ch.iter().all(|c| c.adagp_total() < c.baseline));
    }

    #[test]
    fn pipeline_rows_near_paper_averages() {
        let g = pipeline_speedup_rows(PipelineScheme::GPipe);
        let geo = g.last().unwrap().1;
        assert!((1.55..1.70).contains(&geo), "GPipe geomean {geo}");
        let c = pipeline_speedup_rows(PipelineScheme::Chimera);
        let geo_c = c.last().unwrap().1;
        assert!((1.48..1.62).contains(&geo_c), "Chimera geomean {geo_c}");
        assert!(geo > geo_c);
    }

    #[test]
    fn energy_rows_show_savings() {
        for (model, base, eff, max) in energy_rows() {
            assert!(eff < base, "{model}");
            assert!(max <= eff + 1e-9, "{model}");
        }
    }

    #[test]
    fn cycle_pair_shows_speedup() {
        let (b, a) = cycle_pair(&transformer_shapes(), AdaGpDesign::Efficient);
        assert!(b / a > 1.0 && b / a < 2.0);
    }

    #[test]
    fn speedup_row_serde_round_trips() {
        // The bench result struct survives JSON through the activated
        // vendored serde (ROADMAP "Real serde" step).
        let rows = speedup_rows(Dataflow::WeightStationary, DatasetScale::Cifar10);
        let js = serde::json::to_string(&rows);
        let back: Vec<SpeedupRow> = serde::json::from_str(&js).expect("rows round-trip");
        assert_eq!(back, rows);
        // Full precision: bit-exact floats after the round trip.
        assert_eq!(back[0].max.to_bits(), rows[0].max.to_bits());
    }
}
