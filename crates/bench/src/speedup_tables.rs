//! Analytic speed-up/energy experiment logic (Figures 16–21, §6.6.1).

use adagp_accel::dataflow::{AcceleratorConfig, Dataflow};
use adagp_accel::designs::AdaGpDesign;
use adagp_accel::energy::{adagp_energy_joules, baseline_energy_joules, EnergyConfig};
use adagp_accel::layer_cost::{model_costs, PredictorCostModel};
use adagp_accel::speedup::{geomean, training_speedup, EpochMix, MODEL_BATCH};
use adagp_accel::timeline::{characterize_layers, LayerCharacterization};
use adagp_nn::models::shapes::{model_shapes, InputScale, LayerKind, LayerShape};
use adagp_nn::models::CnnModel;
use adagp_pipeline::{PipelineConfig, PipelineScheme};

/// One row of a Figures 17–19 speed-up table.
#[derive(Debug, Clone)]
pub struct SpeedupRow {
    /// Model name.
    pub model: String,
    /// ADA-GP-LOW speed-up.
    pub low: f64,
    /// ADA-GP-Efficient speed-up.
    pub efficient: f64,
    /// ADA-GP-MAX speed-up.
    pub max: f64,
}

/// The dataset column of Figures 17–19 (model input scale differs).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DatasetScale {
    /// CIFAR10 (32² inputs).
    Cifar10,
    /// CIFAR100 (32² inputs).
    Cifar100,
    /// ImageNet (224² inputs).
    ImageNet,
}

impl DatasetScale {
    /// All three dataset columns.
    pub fn all() -> [DatasetScale; 3] {
        [
            DatasetScale::Cifar10,
            DatasetScale::Cifar100,
            DatasetScale::ImageNet,
        ]
    }

    /// Display name.
    pub fn name(&self) -> &'static str {
        match self {
            DatasetScale::Cifar10 => "Cifar10",
            DatasetScale::Cifar100 => "Cifar100",
            DatasetScale::ImageNet => "ImageNet",
        }
    }

    /// Input scale of this dataset.
    pub fn input_scale(&self) -> InputScale {
        match self {
            DatasetScale::ImageNet => InputScale::ImageNet,
            _ => InputScale::Cifar,
        }
    }
}

/// Speed-up rows for one dataflow and dataset (one panel of Figs 17–19),
/// plus the geomean row.
pub fn speedup_rows(df: Dataflow, dataset: DatasetScale) -> Vec<SpeedupRow> {
    let cfg = AcceleratorConfig::default();
    let mix = EpochMix::paper();
    let mut rows: Vec<SpeedupRow> = CnnModel::all()
        .iter()
        .map(|&m| {
            let layers = model_shapes(m, dataset.input_scale());
            let s = |d| training_speedup(&cfg, df, d, &layers, &mix);
            SpeedupRow {
                model: m.name().to_string(),
                low: s(AdaGpDesign::Low),
                efficient: s(AdaGpDesign::Efficient),
                max: s(AdaGpDesign::Max),
            }
        })
        .collect();
    let g = |f: &dyn Fn(&SpeedupRow) -> f64| geomean(&rows.iter().map(f).collect::<Vec<_>>());
    rows.push(SpeedupRow {
        model: "Geomean".to_string(),
        low: g(&|r| r.low),
        efficient: g(&|r| r.efficient),
        max: g(&|r| r.max),
    });
    rows
}

/// Figure 16: per-layer characterization of VGG13's ten conv layers under
/// ADA-GP-Efficient.
pub fn vgg13_characterization() -> Vec<LayerCharacterization> {
    let cfg = AcceleratorConfig::default();
    let layers: Vec<LayerShape> = model_shapes(CnnModel::Vgg13, InputScale::Cifar)
        .into_iter()
        .filter(|l| l.kind == LayerKind::Conv)
        .collect();
    let costs = model_costs(
        &cfg,
        Dataflow::WeightStationary,
        &PredictorCostModel::default(),
        &layers,
        MODEL_BATCH,
    );
    let labels: Vec<String> = layers.iter().map(|l| l.label.clone()).collect();
    let mix = EpochMix::paper();
    // Average GP fraction over the post-warm-up epochs.
    let post_epochs: usize = mix.total() - mix.warmup;
    let gp_frac = mix
        .stages()
        .iter()
        .skip(1)
        .map(|&(g, e)| g * e as f64)
        .sum::<f64>()
        / post_epochs as f64;
    characterize_layers(
        &labels,
        &costs,
        AdaGpDesign::Efficient,
        mix.warmup as f64 / mix.total() as f64,
        gp_frac,
    )
}

/// Figure 20: per-model ADA-GP speed-up over each pipeline scheme, with
/// the predictor latency ratio α/FW taken from the cycle model.
pub fn pipeline_speedup_rows(scheme: PipelineScheme) -> Vec<(String, f64)> {
    let cfg = AcceleratorConfig::default();
    let pcfg = PipelineConfig::default();
    let mut rows: Vec<(String, f64)> = CnnModel::all()
        .iter()
        .map(|&m| {
            let layers = model_shapes(m, InputScale::ImageNet);
            // Each device runs one micro-batch (mini-batch / devices) of a
            // quarter of the layers, so the predictor latency is weighed
            // against a per-device, per-micro-batch forward slice.
            let micro_batch = MODEL_BATCH / pcfg.devices;
            let costs = model_costs(
                &cfg,
                Dataflow::WeightStationary,
                &PredictorCostModel::default(),
                &layers,
                micro_batch,
            );
            let fw: u64 = costs.iter().map(|c| c.fw).sum();
            let alpha: u64 = costs.iter().map(|c| c.alpha).sum();
            let alpha_ratio = pcfg.devices as f64 * alpha as f64 / fw as f64;
            (
                m.name().to_string(),
                scheme.adagp_speedup(&pcfg, alpha_ratio),
            )
        })
        .collect();
    let g = geomean(&rows.iter().map(|(_, s)| *s).collect::<Vec<_>>());
    rows.push(("Geomean".to_string(), g));
    rows
}

/// Figure 21: memory energy (J) for baseline / Efficient / MAX per model.
pub fn energy_rows() -> Vec<(String, f64, f64, f64)> {
    let cfg = EnergyConfig::default();
    let mix = EpochMix::paper();
    CnnModel::all()
        .iter()
        .map(|&m| {
            let layers = model_shapes(m, InputScale::Cifar);
            (
                m.name().to_string(),
                baseline_energy_joules(&cfg, &layers, &mix),
                adagp_energy_joules(&cfg, &layers, &mix, AdaGpDesign::Efficient),
                adagp_energy_joules(&cfg, &layers, &mix, AdaGpDesign::Max),
            )
        })
        .collect()
}

/// Prints one of Figures 17–19: speed-up tables for every dataset under a
/// dataflow.
pub fn print_speedup_figure(figure: &str, df: Dataflow) {
    use crate::report::{f2, render_table};
    for dataset in DatasetScale::all() {
        let rows: Vec<Vec<String>> = speedup_rows(df, dataset)
            .iter()
            .map(|r| vec![r.model.clone(), f2(r.low), f2(r.efficient), f2(r.max)])
            .collect();
        println!(
            "{}",
            render_table(
                &format!(
                    "{figure}: speed-up over baseline ({} dataflow), {} dataset",
                    df.name(),
                    dataset.name()
                ),
                &["Model", "ADA-GP-LOW", "ADA-GP-Efficient", "ADA-GP-MAX"],
                &rows,
            )
        );
    }
}

/// CSV header shared by the fig17–19 speed-up exports.
pub const SPEEDUP_CSV_HEADER: [&str; 6] = [
    "dataflow",
    "dataset",
    "model",
    "adagp_low",
    "adagp_efficient",
    "adagp_max",
];

/// Machine-readable rows for one of Figures 17–19: every dataset panel
/// flattened into `(dataflow, dataset, model, low, efficient, max)`
/// records — the format the future sweep driver diffs across PRs.
pub fn speedup_figure_csv_rows(df: Dataflow) -> Vec<Vec<String>> {
    let mut rows = Vec::new();
    for dataset in DatasetScale::all() {
        for r in speedup_rows(df, dataset) {
            rows.push(vec![
                df.name().to_string(),
                dataset.name().to_string(),
                r.model.clone(),
                format!("{:.6}", r.low),
                format!("{:.6}", r.efficient),
                format!("{:.6}", r.max),
            ]);
        }
    }
    rows
}

/// Shared driver for the fig17–19 binaries: prints the pretty tables and,
/// when `--csv <path>` was passed on the command line, writes the same
/// data as CSV next to them.
pub fn run_speedup_figure(figure: &str, df: Dataflow) {
    print_speedup_figure(figure, df);
    if let Some(path) = crate::report::csv_path_from_args() {
        let rows = speedup_figure_csv_rows(df);
        match crate::report::write_csv(&path, &SPEEDUP_CSV_HEADER, &rows) {
            Ok(()) => println!("wrote {} rows to {}", rows.len(), path.display()),
            Err(e) => {
                eprintln!("failed to write CSV to {}: {e}", path.display());
                std::process::exit(1);
            }
        }
    }
}

/// Paper-scale layer shapes of the Table 2 Transformer (3 encoder + 3
/// decoder layers, d_model 512, FFN 2048, sequence length 32). Per-token
/// linear layers are encoded as 1×1 convs over the sequence axis, which
/// makes their MAC count `tokens × in × out` as required.
pub fn transformer_shapes() -> Vec<LayerShape> {
    let (d, ff, seq) = (512usize, 2048usize, 32usize);
    let mut shapes = Vec::new();
    let lin = |label: String, i: usize, o: usize| LayerShape {
        label,
        kind: LayerKind::Conv,
        in_ch: i,
        out_ch: o,
        k: 1,
        h_out: seq,
        w_out: 1,
    };
    for l in 0..3 {
        for p in ["wq", "wk", "wv", "wo"] {
            shapes.push(lin(format!("enc{l}.{p}"), d, d));
        }
        shapes.push(lin(format!("enc{l}.ff1"), d, ff));
        shapes.push(lin(format!("enc{l}.ff2"), ff, d));
    }
    for l in 0..3 {
        for p in ["sq", "sk", "sv", "so", "cq", "ck", "cv", "co"] {
            shapes.push(lin(format!("dec{l}.{p}"), d, d));
        }
        shapes.push(lin(format!("dec{l}.ff1"), d, ff));
        shapes.push(lin(format!("dec{l}.ff2"), ff, d));
    }
    shapes.push(lin("head".to_string(), d, 32_000));
    shapes
}

/// Paper-scale layer shapes of the Table 3 YOLO-v3-style detector at VOC
/// resolution (416², stride-8 grid).
pub fn yolo_shapes() -> Vec<LayerShape> {
    let mut shapes = Vec::new();
    let widths = [16usize, 32, 64, 128, 256];
    let mut ch = 3usize;
    let mut size = 416usize;
    for (i, &w) in widths.iter().enumerate() {
        shapes.push(LayerShape::conv(format!("yolo_c{i}"), ch, w, 3, size));
        if i + 1 < widths.len() {
            size /= 2;
        }
        ch = w;
    }
    shapes.push(LayerShape::conv("yolo_head", ch, 75, 1, size)); // 5+20 classes, 3 anchors
    shapes
}

/// Training cycles (baseline, ADA-GP) for an arbitrary shape list under a
/// design and the paper's epoch mix — used for the cycle columns of
/// Tables 2–3.
pub fn cycle_pair(layers: &[LayerShape], design: AdaGpDesign) -> (f64, f64) {
    let cfg = AcceleratorConfig::default();
    let mix = EpochMix::paper();
    (
        adagp_accel::speedup::baseline_training_cycles(
            &cfg,
            Dataflow::WeightStationary,
            layers,
            &mix,
        ),
        adagp_accel::speedup::adagp_training_cycles(
            &cfg,
            Dataflow::WeightStationary,
            design,
            layers,
            &mix,
        ),
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn speedup_rows_cover_13_models_plus_geomean() {
        let rows = speedup_rows(Dataflow::WeightStationary, DatasetScale::Cifar10);
        assert_eq!(rows.len(), 14);
        assert_eq!(rows.last().unwrap().model, "Geomean");
        for r in &rows {
            assert!(r.max >= r.efficient && r.efficient >= r.low, "{}", r.model);
            assert!(r.max > 1.0 && r.max < 2.0, "{}: {}", r.model, r.max);
        }
    }

    #[test]
    fn imagenet_geomean_at_least_cifar() {
        // Figure 17: ImageNet average (1.48) ≥ CIFAR average (1.46).
        let c = speedup_rows(Dataflow::WeightStationary, DatasetScale::Cifar10);
        let i = speedup_rows(Dataflow::WeightStationary, DatasetScale::ImageNet);
        assert!(i.last().unwrap().max >= c.last().unwrap().max - 0.02);
    }

    #[test]
    fn csv_rows_flatten_every_dataset_panel() {
        let rows = speedup_figure_csv_rows(Dataflow::WeightStationary);
        // 3 datasets × (13 models + geomean).
        assert_eq!(rows.len(), 3 * 14);
        assert!(rows.iter().all(|r| r.len() == SPEEDUP_CSV_HEADER.len()));
        let df_name = Dataflow::WeightStationary.name();
        assert!(rows.iter().all(|r| r[0] == df_name), "dataflow column");
        // Numeric columns parse back.
        for r in &rows {
            for v in &r[3..6] {
                v.parse::<f64>().expect("numeric CSV cell");
            }
        }
    }

    #[test]
    fn characterization_has_ten_layers() {
        let ch = vgg13_characterization();
        assert_eq!(ch.len(), 10);
        assert!(ch.iter().all(|c| c.adagp_total() < c.baseline));
    }

    #[test]
    fn pipeline_rows_near_paper_averages() {
        let g = pipeline_speedup_rows(PipelineScheme::GPipe);
        let geo = g.last().unwrap().1;
        assert!((1.55..1.70).contains(&geo), "GPipe geomean {geo}");
        let c = pipeline_speedup_rows(PipelineScheme::Chimera);
        let geo_c = c.last().unwrap().1;
        assert!((1.48..1.62).contains(&geo_c), "Chimera geomean {geo_c}");
        assert!(geo > geo_c);
    }

    #[test]
    fn energy_rows_show_savings() {
        for (model, base, eff, max) in energy_rows() {
            assert!(eff < base, "{model}");
            assert!(max <= eff + 1e-9, "{model}");
        }
    }

    #[test]
    fn transformer_and_yolo_shapes_nonempty() {
        let t = transformer_shapes();
        assert_eq!(t.len(), 3 * 6 + 3 * 10 + 1);
        let y = yolo_shapes();
        assert_eq!(y.len(), 6);
    }

    #[test]
    fn cycle_pair_shows_speedup() {
        let (b, a) = cycle_pair(&transformer_shapes(), AdaGpDesign::Efficient);
        assert!(b / a > 1.0 && b / a < 2.0);
    }
}
