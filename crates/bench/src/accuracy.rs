//! Shared accuracy-experiment logic (Table 1 and Figure 15).
//!
//! Trains a model twice — once with plain backpropagation, once with
//! ADA-GP — on the same synthetic dataset and seed, and reports the final
//! test accuracies. Budgets are CPU-scaled (see DESIGN.md §3); the
//! comparison of interest is the BP-vs-ADA-GP *delta*, which is what
//! Table 1 demonstrates (ADA-GP tracks or slightly beats BP).

use adagp_core::trainer::evaluate_accuracy;
use adagp_core::{AdaGp, AdaGpConfig, BaselineTrainer, ScheduleConfig};
use adagp_nn::data::{DatasetSpec, VisionDataset};
use adagp_nn::models::{build_cnn, CnnModel, ModelConfig};
use adagp_nn::optim::Optimizer;
use adagp_nn::optim::Sgd;
use adagp_nn::sched::ReduceLrOnPlateau;
use adagp_tensor::Prng;

/// Budget of one accuracy experiment.
#[derive(Debug, Clone, Copy)]
pub struct TrainBudget {
    /// Total epochs (includes warm-up).
    pub epochs: usize,
    /// Warm-up epochs for the ADA-GP arm.
    pub warmup_epochs: usize,
    /// Batch size.
    pub batch: usize,
    /// Batches per epoch.
    pub batches_per_epoch: usize,
    /// Width multiplier for the model builders.
    pub width: f32,
    /// Depth divisor for the model builders.
    pub depth_div: usize,
}

impl TrainBudget {
    /// Quick CPU budget (default harness mode).
    pub fn quick() -> Self {
        TrainBudget {
            epochs: 8,
            warmup_epochs: 2,
            batch: 8,
            batches_per_epoch: 16,
            width: 0.0625,
            depth_div: 4,
        }
    }

    /// Fuller budget for `ADAGP_FULL=1`.
    pub fn full() -> Self {
        TrainBudget {
            epochs: 16,
            warmup_epochs: 4,
            batch: 16,
            batches_per_epoch: 32,
            width: 0.125,
            depth_div: 2,
        }
    }
}

/// Result of one BP-vs-ADA-GP accuracy run.
#[derive(Debug, Clone, Copy)]
pub struct AccuracyResult {
    /// Final test accuracy of the backprop baseline, percent.
    pub bp_accuracy: f32,
    /// Final test accuracy of ADA-GP, percent.
    pub adagp_accuracy: f32,
}

/// Trains `model` on `spec` with both arms and returns final accuracies.
pub fn run_accuracy_experiment(
    model: CnnModel,
    spec: DatasetSpec,
    budget: &TrainBudget,
    seed: u64,
) -> AccuracyResult {
    let dataset = VisionDataset::new(spec, seed);
    let cfg = ModelConfig {
        width: budget.width,
        depth_div: budget.depth_div,
        classes: spec.classes,
    };

    // --- Arm 1: plain backpropagation (both arms share the init seed).
    let mut rng = Prng::seed_from_u64(seed ^ 0xBEEF);
    let mut bp_model = build_cnn(model, &cfg, spec.channels, spec.size, &mut rng);
    let mut bp_opt = Sgd::new(0.01, 0.9);
    let mut baseline = BaselineTrainer::new();
    let mut bp_sched = ReduceLrOnPlateau::new(0.5, 3);
    for _epoch in 0..budget.epochs {
        let mut epoch_loss = 0.0f32;
        for b in 0..budget.batches_per_epoch {
            let (x, y) = dataset.train_batch(b, budget.batch);
            epoch_loss += baseline
                .train_batch(&mut bp_model, &mut bp_opt, &x, &y)
                .loss;
        }
        let lr = bp_sched.step(epoch_loss, bp_opt.lr());
        bp_opt.set_lr(lr);
    }
    let bp_accuracy = evaluate_accuracy(
        &mut bp_model,
        (0..4).map(|b| dataset.test_batch(b, budget.batch)),
    );

    // --- Arm 2: ADA-GP with the paper's schedule (compressed stages).
    let mut rng = Prng::seed_from_u64(seed ^ 0xBEEF);
    let mut gp_model = build_cnn(model, &cfg, spec.channels, spec.size, &mut rng);
    let mut adagp_cfg = AdaGpConfig {
        schedule: ScheduleConfig {
            warmup_epochs: budget.warmup_epochs,
            epochs_per_stage: 1,
            ..Default::default()
        },
        track_metrics: false,
        ..Default::default()
    };
    // The paper's predictor lr (1e-4) presumes tens of thousands of
    // training batches; the CPU budgets see a few hundred, so the
    // predictor's own lr is scaled up accordingly.
    adagp_cfg.predictor.lr = 1e-3;
    let mut adagp = AdaGp::new(adagp_cfg, &mut gp_model, &mut rng);
    let mut gp_opt = Sgd::new(0.01, 0.9);
    let mut gp_sched = ReduceLrOnPlateau::new(0.5, 3);
    for _epoch in 0..budget.epochs {
        let mut epoch_loss = 0.0f32;
        for b in 0..budget.batches_per_epoch {
            let (x, y) = dataset.train_batch(b, budget.batch);
            epoch_loss += adagp.train_batch(&mut gp_model, &mut gp_opt, &x, &y).loss;
        }
        adagp.controller_mut().end_epoch();
        let lr = gp_sched.step(epoch_loss, gp_opt.lr());
        gp_opt.set_lr(lr);
    }
    let adagp_accuracy = evaluate_accuracy(
        &mut gp_model,
        (0..4).map(|b| dataset.test_batch(b, budget.batch)),
    );

    AccuracyResult {
        bp_accuracy,
        adagp_accuracy,
    }
}

/// Per-layer predictor error series over epochs (Figure 15): trains VGG13
/// with ADA-GP and records mean MAPE/MSE per layer per epoch.
pub fn predictor_error_series(
    spec: DatasetSpec,
    budget: &TrainBudget,
    seed: u64,
) -> Vec<Vec<(f32, f32)>> {
    let dataset = VisionDataset::new(spec, seed);
    let cfg = ModelConfig {
        width: budget.width,
        depth_div: budget.depth_div,
        classes: spec.classes,
    };
    let mut rng = Prng::seed_from_u64(seed);
    let mut model = build_cnn(CnnModel::Vgg13, &cfg, spec.channels, spec.size, &mut rng);
    // All-BP schedule so every batch yields true gradients to score against.
    let adagp_cfg = AdaGpConfig {
        schedule: ScheduleConfig {
            warmup_epochs: usize::MAX,
            ..Default::default()
        },
        track_metrics: true,
        ..Default::default()
    };
    let mut adagp = AdaGp::new(adagp_cfg, &mut model, &mut rng);
    let mut opt = Sgd::new(0.01, 0.9);
    let layers = adagp.sites().len();
    let mut series: Vec<Vec<(f32, f32)>> = vec![Vec::new(); layers];
    for _epoch in 0..budget.epochs {
        for b in 0..budget.batches_per_epoch {
            let (x, y) = dataset.train_batch(b, budget.batch);
            adagp.train_batch(&mut model, &mut opt, &x, &y);
        }
        for l in 0..layers {
            let e = adagp
                .metrics()
                .layer_mean(l)
                .unwrap_or(adagp_core::GradientErrors {
                    mape: 0.0,
                    mse: 0.0,
                });
            series[l].push((e.mape, e.mse));
        }
        adagp.reset_metrics();
        adagp.controller_mut().end_epoch();
    }
    series
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn accuracy_experiment_runs_and_learns() {
        let budget = TrainBudget {
            epochs: 7,
            warmup_epochs: 3,
            batch: 8,
            batches_per_epoch: 8,
            width: 0.0625,
            depth_div: 8,
        };
        let spec = DatasetSpec::tiny(4, 12);
        let r = run_accuracy_experiment(CnnModel::Vgg13, spec, &budget, 7);
        // Both arms should beat random (25%) on this easy 4-class task.
        // (The full-budget harness shows ADA-GP matching BP; this tiny
        // budget only checks that the GP phases don't destroy learning.)
        assert!(r.bp_accuracy > 30.0, "bp {}", r.bp_accuracy);
        assert!(r.adagp_accuracy > 28.0, "adagp {}", r.adagp_accuracy);
    }

    #[test]
    fn predictor_series_has_layer_rows() {
        let budget = TrainBudget {
            epochs: 2,
            warmup_epochs: 2,
            batch: 4,
            batches_per_epoch: 4,
            width: 0.0625,
            depth_div: 8,
        };
        let series = predictor_error_series(DatasetSpec::tiny(4, 12), &budget, 3);
        assert!(!series.is_empty());
        assert!(series.iter().all(|row| row.len() == 2));
        assert!(series.iter().all(|row| row
            .iter()
            .all(|(mape, mse)| mape.is_finite() && mse.is_finite())));
    }
}
