//! The single shared source of per-model layer shapes for every bench
//! experiment.
//!
//! Until this module existed, `speedup_rows`, `energy_rows`,
//! `pipeline_speedup_rows` and fig16 each re-derived their layer-shape
//! tables independently, and the Transformer/YOLO tables lived inside
//! `speedup_tables`. Now every experiment pulls shapes from here: the CNN
//! grid shapes come from `adagp_sweep::shapes` (one memoized derivation
//! per (model, input scale), shared with the sweep runner), and the
//! non-CNN paper-scale tables (Tables 2–3) are defined here once.

pub use adagp_sweep::shapes::cached_shapes;
pub use adagp_sweep::DatasetScale;

use adagp_nn::models::shapes::{InputScale, LayerKind, LayerShape};
use adagp_nn::models::CnnModel;
use std::sync::Arc;

/// Shapes of `model` as trained on `dataset` (memoized, shared with the
/// sweep engine).
pub fn dataset_shapes(model: CnnModel, dataset: DatasetScale) -> Arc<Vec<LayerShape>> {
    cached_shapes(model, dataset.input_scale())
}

/// Shapes of `model` at ImageNet resolution (Figure 20's pipeline study).
pub fn imagenet_shapes(model: CnnModel) -> Arc<Vec<LayerShape>> {
    cached_shapes(model, InputScale::ImageNet)
}

/// Shapes of `model` at CIFAR resolution (Figure 21's energy study).
pub fn cifar_shapes(model: CnnModel) -> Arc<Vec<LayerShape>> {
    cached_shapes(model, InputScale::Cifar)
}

/// VGG13's ten conv layers at CIFAR scale (Figure 16's characterization).
pub fn vgg13_conv_shapes() -> Vec<LayerShape> {
    cifar_shapes(CnnModel::Vgg13)
        .iter()
        .filter(|l| l.kind == LayerKind::Conv)
        .cloned()
        .collect()
}

/// Paper-scale layer shapes of the Table 2 Transformer (3 encoder + 3
/// decoder layers, d_model 512, FFN 2048, sequence length 32). Per-token
/// linear layers are encoded as 1×1 convs over the sequence axis, which
/// makes their MAC count `tokens × in × out` as required.
pub fn transformer_shapes() -> Vec<LayerShape> {
    let (d, ff, seq) = (512usize, 2048usize, 32usize);
    let mut shapes = Vec::new();
    let lin = |label: String, i: usize, o: usize| LayerShape {
        label,
        kind: LayerKind::Conv,
        in_ch: i,
        out_ch: o,
        k: 1,
        h_out: seq,
        w_out: 1,
    };
    for l in 0..3 {
        for p in ["wq", "wk", "wv", "wo"] {
            shapes.push(lin(format!("enc{l}.{p}"), d, d));
        }
        shapes.push(lin(format!("enc{l}.ff1"), d, ff));
        shapes.push(lin(format!("enc{l}.ff2"), ff, d));
    }
    for l in 0..3 {
        for p in ["sq", "sk", "sv", "so", "cq", "ck", "cv", "co"] {
            shapes.push(lin(format!("dec{l}.{p}"), d, d));
        }
        shapes.push(lin(format!("dec{l}.ff1"), d, ff));
        shapes.push(lin(format!("dec{l}.ff2"), ff, d));
    }
    shapes.push(lin("head".to_string(), d, 32_000));
    shapes
}

/// Paper-scale layer shapes of the Table 3 YOLO-v3-style detector at VOC
/// resolution (416², stride-8 grid).
pub fn yolo_shapes() -> Vec<LayerShape> {
    let mut shapes = Vec::new();
    let widths = [16usize, 32, 64, 128, 256];
    let mut ch = 3usize;
    let mut size = 416usize;
    for (i, &w) in widths.iter().enumerate() {
        shapes.push(LayerShape::conv(format!("yolo_c{i}"), ch, w, 3, size));
        if i + 1 < widths.len() {
            size /= 2;
        }
        ch = w;
    }
    shapes.push(LayerShape::conv("yolo_head", ch, 75, 1, size)); // 5+20 classes, 3 anchors
    shapes
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn transformer_and_yolo_shapes_nonempty() {
        let t = transformer_shapes();
        assert_eq!(t.len(), 3 * 6 + 3 * 10 + 1);
        let y = yolo_shapes();
        assert_eq!(y.len(), 6);
    }

    #[test]
    fn dataset_shapes_share_the_sweep_cache() {
        let a = dataset_shapes(CnnModel::Vgg13, DatasetScale::Cifar10);
        let b = cached_shapes(CnnModel::Vgg13, InputScale::Cifar);
        assert!(Arc::ptr_eq(&a, &b), "bench and sweep must share one table");
        // CIFAR10 and CIFAR100 share the 32² scale, hence the table.
        let c = dataset_shapes(CnnModel::Vgg13, DatasetScale::Cifar100);
        assert!(Arc::ptr_eq(&a, &c));
    }

    #[test]
    fn vgg13_has_ten_conv_layers() {
        assert_eq!(vgg13_conv_shapes().len(), 10);
    }
}
