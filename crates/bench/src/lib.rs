//! # adagp-bench
//!
//! The experiment harness that regenerates every table and figure of the
//! ADA-GP paper's evaluation (§6). Each `src/bin/*.rs` binary prints the
//! rows/series of one paper artifact; this library holds the shared
//! experiment logic so integration tests can exercise the same code with
//! reduced budgets.
//!
//! Run e.g. `cargo run -p adagp-bench --release --bin fig17_ws_speedup`.
//! Set `ADAGP_FULL=1` for the slower, higher-fidelity training budgets.

pub mod accuracy;
pub mod detection;
pub mod model_grid;
pub mod report;
pub mod speedup_tables;
pub mod translation;

/// Whether the harness should use the full (slow) experiment budget.
pub fn full_budget() -> bool {
    std::env::var("ADAGP_FULL")
        .map(|v| v == "1")
        .unwrap_or(false)
}
