//! Micro-benchmarks of the tensor kernels that dominate training time.

use adagp_tensor::conv::{conv2d, conv2d_backward_data, conv2d_backward_weight, Conv2dParams};
use adagp_tensor::norm::batchnorm2d_forward;
use adagp_tensor::{init, Prng, Tensor};
use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

fn bench_kernels(c: &mut Criterion) {
    let mut rng = Prng::seed_from_u64(0);
    let x = init::gaussian(&[4, 16, 16, 16], 0.0, 1.0, &mut rng);
    let w = init::gaussian(&[32, 16, 3, 3], 0.0, 0.1, &mut rng);
    let p = Conv2dParams::new(1, 1);
    let y = conv2d(&x, &w, None, &p);

    let mut g = c.benchmark_group("kernels");
    g.sample_size(10);

    g.bench_function("conv2d_fw_16x16", |b| {
        b.iter(|| conv2d(black_box(&x), black_box(&w), None, &p))
    });
    g.bench_function("conv2d_bw_data_16x16", |b| {
        b.iter(|| conv2d_backward_data(black_box(&y), black_box(&w), 16, 16, &p))
    });
    g.bench_function("conv2d_bw_weight_16x16", |b| {
        b.iter(|| conv2d_backward_weight(black_box(&x), black_box(&y), 3, 3, &p))
    });

    let a = init::gaussian(&[128, 256], 0.0, 1.0, &mut rng);
    let bm = init::gaussian(&[256, 128], 0.0, 1.0, &mut rng);
    g.bench_function("matmul_128x256x128", |b| {
        b.iter(|| black_box(&a).matmul(black_box(&bm)))
    });

    let gamma = Tensor::ones(&[16]);
    let beta = Tensor::zeros(&[16]);
    g.bench_function("batchnorm_fw", |b| {
        b.iter(|| batchnorm2d_forward(black_box(&x), &gamma, &beta, 1e-5))
    });
    g.finish();
}

criterion_group!(benches, bench_kernels);
criterion_main!(benches);
