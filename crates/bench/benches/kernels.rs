//! Micro-benchmarks of the tensor kernels that dominate training time.
//!
//! The kernels run on the shared `adagp_runtime` pool; set `ADAGP_THREADS`
//! to compare thread counts (`ADAGP_THREADS=1` is the scalar baseline, and
//! results are bit-identical at every setting). The `*_large` shapes are
//! the speed-up acceptance benchmarks for the parallel kernels.

use adagp_tensor::conv::{conv2d, conv2d_backward_data, conv2d_backward_weight, Conv2dParams};
use adagp_tensor::norm::batchnorm2d_forward;
use adagp_tensor::{init, Prng, Tensor};
use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

fn bench_kernels(c: &mut Criterion) {
    let mut rng = Prng::seed_from_u64(0);
    let x = init::gaussian(&[4, 16, 16, 16], 0.0, 1.0, &mut rng);
    let w = init::gaussian(&[32, 16, 3, 3], 0.0, 0.1, &mut rng);
    let p = Conv2dParams::new(1, 1);
    let y = conv2d(&x, &w, None, &p);

    let mut g = c.benchmark_group("kernels");
    g.sample_size(10);

    g.bench_function("conv2d_fw_16x16", |b| {
        b.iter(|| conv2d(black_box(&x), black_box(&w), None, &p))
    });
    g.bench_function("conv2d_bw_data_16x16", |b| {
        b.iter(|| conv2d_backward_data(black_box(&y), black_box(&w), 16, 16, &p))
    });
    g.bench_function("conv2d_bw_weight_16x16", |b| {
        b.iter(|| conv2d_backward_weight(black_box(&x), black_box(&y), 3, 3, &p))
    });

    let a = init::gaussian(&[128, 256], 0.0, 1.0, &mut rng);
    let bm = init::gaussian(&[256, 128], 0.0, 1.0, &mut rng);
    g.bench_function("matmul_128x256x128", |b| {
        b.iter(|| black_box(&a).matmul(black_box(&bm)))
    });

    let gamma = Tensor::ones(&[16]);
    let beta = Tensor::zeros(&[16]);
    g.bench_function("batchnorm_fw", |b| {
        b.iter(|| batchnorm2d_forward(black_box(&x), &gamma, &beta, 1e-5))
    });

    // Large shapes: the parallel-kernel acceptance benchmarks.
    let xl = init::gaussian(&[8, 32, 32, 32], 0.0, 1.0, &mut rng);
    let wl = init::gaussian(&[64, 32, 3, 3], 0.0, 0.1, &mut rng);
    let yl = conv2d(&xl, &wl, None, &p);
    g.bench_function("conv2d_fw_large", |b| {
        b.iter(|| conv2d(black_box(&xl), black_box(&wl), None, &p))
    });
    g.bench_function("conv2d_bw_data_large", |b| {
        b.iter(|| conv2d_backward_data(black_box(&yl), black_box(&wl), 32, 32, &p))
    });
    g.bench_function("conv2d_bw_weight_large", |b| {
        b.iter(|| conv2d_backward_weight(black_box(&xl), black_box(&yl), 3, 3, &p))
    });

    let al = init::gaussian(&[256, 256], 0.0, 1.0, &mut rng);
    let bl = init::gaussian(&[256, 256], 0.0, 1.0, &mut rng);
    g.bench_function("matmul_large_256", |b| {
        b.iter(|| black_box(&al).matmul(black_box(&bl)))
    });

    let gl = Tensor::ones(&[32]);
    let betal = Tensor::zeros(&[32]);
    g.bench_function("batchnorm_fw_large", |b| {
        b.iter(|| batchnorm2d_forward(black_box(&xl), &gl, &betal, 1e-5))
    });
    g.finish();
}

criterion_group!(benches, bench_kernels);
criterion_main!(benches);
