//! Benchmarks of the pipeline schedule simulator and the scheme models.

use adagp_pipeline::{simulate_gpipe, PipelineConfig, PipelineScheme};
use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

fn bench_pipeline(c: &mut Criterion) {
    let mut g = c.benchmark_group("pipeline");
    g.sample_size(30);
    g.bench_function("simulate_gpipe_4x4", |b| {
        b.iter(|| simulate_gpipe(black_box(4), black_box(4), 1, 2))
    });
    g.bench_function("simulate_gpipe_16x32", |b| {
        b.iter(|| simulate_gpipe(black_box(16), black_box(32), 1, 2))
    });
    let cfg = PipelineConfig::default();
    g.bench_function("all_schemes_speedup", |b| {
        b.iter(|| {
            for s in PipelineScheme::all() {
                black_box(s.adagp_speedup(&cfg, 0.05));
            }
        })
    });
    g.finish();
}

criterion_group!(benches, bench_pipeline);
criterion_main!(benches);
