//! Benchmarks of the accelerator cycle model: per-model cost evaluation
//! and the full Figure 17 sweep.

use adagp_accel::dataflow::{AcceleratorConfig, Dataflow};
use adagp_accel::designs::AdaGpDesign;
use adagp_accel::layer_cost::{model_costs, PredictorCostModel};
use adagp_accel::speedup::{training_speedup, EpochMix, MODEL_BATCH};
use adagp_nn::models::shapes::{model_shapes, InputScale};
use adagp_nn::models::CnnModel;
use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

fn bench_cycle_model(c: &mut Criterion) {
    let cfg = AcceleratorConfig::default();
    let pred = PredictorCostModel::default();
    let layers = model_shapes(CnnModel::ResNet152, InputScale::ImageNet);
    let mix = EpochMix::paper();

    let mut g = c.benchmark_group("cycle_model");
    g.sample_size(20);
    g.bench_function("model_costs_resnet152_imagenet", |b| {
        b.iter(|| {
            model_costs(
                black_box(&cfg),
                Dataflow::WeightStationary,
                &pred,
                black_box(&layers),
                MODEL_BATCH,
            )
        })
    });
    g.bench_function("training_speedup_resnet152", |b| {
        b.iter(|| {
            training_speedup(
                &cfg,
                Dataflow::WeightStationary,
                AdaGpDesign::Max,
                black_box(&layers),
                &mix,
            )
        })
    });
    g.bench_function("fig17_full_sweep", |b| {
        b.iter(|| {
            for m in CnnModel::all() {
                for scale in [InputScale::Cifar, InputScale::ImageNet] {
                    let shapes = model_shapes(m, scale);
                    for d in AdaGpDesign::all() {
                        black_box(training_speedup(
                            &cfg,
                            Dataflow::WeightStationary,
                            d,
                            &shapes,
                            &mix,
                        ));
                    }
                }
            }
        })
    });
    g.finish();
}

criterion_group!(benches, bench_cycle_model);
criterion_main!(benches);
