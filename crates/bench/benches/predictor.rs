//! Benchmarks of the ADA-GP predictor: prediction and training cost per
//! site, plus the tensor reorganization itself.

use adagp_core::reorg;
use adagp_core::{Predictor, PredictorConfig};
use adagp_nn::{SiteKind, SiteMeta};
use adagp_tensor::{init, Prng};
use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

fn conv_meta(out_ch: usize, in_ch: usize, k: usize) -> SiteMeta {
    SiteMeta {
        kind: SiteKind::Conv2d,
        weight_shape: vec![out_ch, in_ch, k, k],
        label: "bench".into(),
    }
}

fn bench_predictor(c: &mut Criterion) {
    let mut rng = Prng::seed_from_u64(0);
    let meta = conv_meta(32, 16, 3);
    let mut predictor = Predictor::for_sites(
        PredictorConfig::default(),
        std::slice::from_ref(&meta),
        &mut rng,
    );
    let act = init::gaussian(&[8, 32, 14, 14], 0.0, 1.0, &mut rng);
    let grad = init::gaussian(&[32, 16, 3, 3], 0.0, 0.01, &mut rng);

    let mut g = c.benchmark_group("predictor");
    g.sample_size(20);
    g.bench_function("reorganize_conv_32ch", |b| {
        b.iter(|| reorg::reorganize(black_box(&meta), black_box(&act)))
    });
    g.bench_function("predict_gradient_32x16x3x3", |b| {
        b.iter(|| predictor.predict_gradient(black_box(&meta), black_box(&act)))
    });
    g.bench_function("train_step_32x16x3x3", |b| {
        b.iter(|| predictor.train_step(black_box(&meta), black_box(&act), black_box(&grad)))
    });
    g.finish();
}

criterion_group!(benches, bench_predictor);
criterion_main!(benches);
