//! Benchmarks of one full ADA-GP training batch in each phase — the
//! software-level analogue of the paper's Phase BP vs Phase GP timeline:
//! even on a CPU, skipping the backward pass makes GP batches measurably
//! cheaper.

use adagp_core::{AdaGp, AdaGpConfig, ScheduleConfig};
use adagp_nn::containers::Sequential;
use adagp_nn::layers::{Conv2d, Flatten, Linear, MaxPool2d, Relu};
use adagp_nn::optim::Sgd;
use adagp_tensor::{Prng, Tensor};
use criterion::{criterion_group, criterion_main, Criterion};

fn model(rng: &mut Prng) -> Sequential {
    let mut m = Sequential::new();
    m.push(Conv2d::new(3, 8, 3, 1, 1, true, rng));
    m.push(Relu::new());
    m.push(MaxPool2d::new(2, 2));
    m.push(Conv2d::new(8, 16, 3, 1, 1, true, rng));
    m.push(Relu::new());
    m.push(Flatten::new());
    m.push(Linear::new(16 * 8 * 8, 10, true, rng));
    m
}

fn bench_phases(c: &mut Criterion) {
    let x = Tensor::ones(&[8, 3, 16, 16]);
    let targets: Vec<usize> = (0..8).map(|i| i % 10).collect();

    let mut g = c.benchmark_group("phases");
    g.sample_size(20);

    // Phase BP batches (warm-up schedule keeps every batch in BP).
    {
        let mut rng = Prng::seed_from_u64(0);
        let mut m = model(&mut rng);
        let cfg = AdaGpConfig {
            schedule: ScheduleConfig {
                warmup_epochs: usize::MAX,
                ..Default::default()
            },
            track_metrics: false,
            ..Default::default()
        };
        let mut adagp = AdaGp::new(cfg, &mut m, &mut rng);
        let mut opt = Sgd::new(0.01, 0.9);
        g.bench_function("train_batch_phase_bp", |b| {
            b.iter(|| adagp.train_batch(&mut m, &mut opt, &x, &targets))
        });
    }

    // Phase GP batches (no warm-up, all-GP ratio).
    {
        let mut rng = Prng::seed_from_u64(0);
        let mut m = model(&mut rng);
        let cfg = AdaGpConfig {
            schedule: ScheduleConfig {
                warmup_epochs: 0,
                ratios: [(usize::MAX, 0); 4],
                ..Default::default()
            },
            track_metrics: false,
            ..Default::default()
        };
        let mut adagp = AdaGp::new(cfg, &mut m, &mut rng);
        let mut opt = Sgd::new(0.01, 0.9);
        g.bench_function("train_batch_phase_gp", |b| {
            b.iter(|| adagp.train_batch(&mut m, &mut opt, &x, &targets))
        });
    }
    g.finish();
}

criterion_group!(benches, bench_phases);
criterion_main!(benches);
