//! Golden gates for the discrete-event simulator:
//!
//! 1. With contention disabled, the simulator reproduces the analytic
//!    `training_speedup` ratios over the **full fig17 grid** bit-for-bit
//!    — every cell, every design, every dataset. This pins the sim's
//!    schedule graphs to the paper's closed forms.
//! 2. The sim smoke-grid CSV is byte-identical to the committed golden
//!    (`testdata/sim_smoke_golden.csv`) and byte-stable across shared-pool
//!    thread counts — the determinism contract CI leans on.

use adagp_sim::SimConfig;
use adagp_sweep::{presets, runner, simeval};
use std::path::PathBuf;

fn golden_path() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("testdata/sim_smoke_golden.csv")
}

#[test]
fn no_contention_sim_reproduces_fig17_speedups_bit_for_bit() {
    let grid = presets::speedup_figure(adagp_accel::Dataflow::WeightStationary);
    let run = runner::run_grid(&grid);
    assert_eq!(run.cells.len(), 117);
    let cfg = SimConfig::no_contention();
    for cell in &run.cells {
        let sim = simeval::simulate_cell(&cell.spec, &cfg);
        assert_eq!(
            sim.sim_speedup.to_bits(),
            cell.metrics.speedup.to_bits(),
            "{}: simulated {} vs analytic {}",
            cell.spec.key(),
            sim.sim_speedup,
            cell.metrics.speedup
        );
    }
}

#[test]
fn sim_smoke_csv_matches_committed_golden_bytes() {
    let golden = std::fs::read_to_string(golden_path()).expect("committed sim golden CSV");
    let fresh = simeval::sim_detail_csv(&simeval::run_sim_grid(
        &presets::smoke(),
        &SimConfig::default(),
    ));
    assert_eq!(
        fresh, golden,
        "sim smoke CSV drifted from testdata/sim_smoke_golden.csv; if the \
         simulator changed intentionally, regenerate it with \
         `cargo run --release -p adagp-bench --bin sweep -- sim smoke --quiet \
         --csv crates/bench/testdata/sim_smoke_golden.csv` and explain the \
         delta in the PR"
    );
}

#[test]
fn sim_smoke_csv_is_byte_stable_across_thread_counts() {
    let grid = presets::smoke();
    let cfg = SimConfig::default();
    let reference = adagp_runtime::with_threads(1, || {
        simeval::sim_detail_csv(&simeval::run_sim_grid(&grid, &cfg))
    });
    for threads in [2, 4] {
        let got = adagp_runtime::with_threads(threads, || {
            simeval::sim_detail_csv(&simeval::run_sim_grid(&grid, &cfg))
        });
        assert_eq!(got, reference, "ADAGP_THREADS={threads}");
    }
    let golden = std::fs::read_to_string(golden_path()).expect("committed sim golden CSV");
    assert_eq!(reference, golden);
}
