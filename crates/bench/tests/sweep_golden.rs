//! Golden-file gates for the sweep engine:
//!
//! 1. The `smoke` preset's CSV must be byte-identical to the committed
//!    golden file — grid expansion, cell IDs, metric math and CSV
//!    formatting cannot drift silently.
//! 2. `sweep diff` of two identical runs reports zero regressions, and a
//!    perturbed run is flagged.
//! 3. The fig17 preset reproduces, bit-exactly, the per-model speed-up
//!    numbers the standalone figure binaries computed before the engine
//!    existed (direct `adagp_accel::speedup::training_speedup` calls).

use adagp_accel::speedup::{training_speedup, EpochMix};
use adagp_accel::{AcceleratorConfig, Dataflow};
use adagp_bench::model_grid::dataset_shapes;
use adagp_sweep::{diff, presets, runner, store, DiffConfig, StoredRun};
use std::path::PathBuf;

fn golden_path() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("testdata/sweep_smoke_golden.csv")
}

#[test]
fn smoke_csv_matches_committed_golden_bytes() {
    let golden = std::fs::read_to_string(golden_path()).expect("committed golden CSV");
    let fresh = store::to_csv_string(&runner::run_grid(&presets::smoke()));
    assert_eq!(
        fresh, golden,
        "smoke sweep CSV drifted from testdata/sweep_smoke_golden.csv; if the \
         cycle/energy model changed intentionally, regenerate it with \
         `cargo run -p adagp-bench --bin sweep -- run smoke --csv \
         crates/bench/testdata/sweep_smoke_golden.csv` and explain the delta \
         in the PR"
    );
}

#[test]
fn identical_runs_diff_clean_and_perturbed_runs_are_flagged() {
    let golden = StoredRun::load(&golden_path()).expect("golden loads");
    let fresh = StoredRun::from_run(&runner::run_grid(&presets::smoke()));
    let clean = diff::diff_runs(&golden, &fresh, &DiffConfig::default());
    assert!(!clean.has_regressions(), "{}", clean.render());
    assert!(clean.improvements.is_empty(), "{}", clean.render());
    assert_eq!(clean.matched_cells, 4);

    // Perturb one speed-up downward: must be reported as a regression.
    let mut perturbed = fresh.clone();
    perturbed.cells[0].metrics[0] *= 0.95;
    let report = diff::diff_runs(&golden, &perturbed, &DiffConfig::default());
    assert!(report.has_regressions());
    assert_eq!(report.regressions.len(), 1);
    assert_eq!(report.regressions[0].metric.name, "speedup");
}

#[test]
fn fig17_preset_reproduces_the_standalone_binary_numbers() {
    // The pre-engine fig17 binary computed, per (dataset, model, design),
    // training_speedup(default cfg, WS, design, model_shapes, paper mix).
    // The engine must produce the same f64s, bit for bit.
    let run = runner::run_grid(&presets::speedup_figure(Dataflow::WeightStationary));
    assert_eq!(run.cells.len(), 117);
    let cfg = AcceleratorConfig::default();
    let mix = EpochMix::paper();
    for cell in &run.cells {
        let layers = dataset_shapes(cell.spec.model, cell.spec.dataset);
        let expected = training_speedup(
            &cfg,
            Dataflow::WeightStationary,
            cell.spec.design,
            &layers,
            &mix,
        );
        assert_eq!(
            cell.metrics.speedup.to_bits(),
            expected.to_bits(),
            "{}: engine {} vs direct {}",
            cell.spec.key(),
            cell.metrics.speedup,
            expected
        );
    }
}
