//! Golden gates for the contention-study subsystem:
//!
//! 1. The roofline knee of every fig17 model (the `roofline` preset:
//!    all 13 models at ImageNet scale under ADA-GP-MAX) is pinned
//!    byte-for-byte in `testdata/roofline_fig17_golden.csv` — the knee
//!    search, the tiling-driven spill model and the CSV formatting cannot
//!    drift silently.
//! 2. The `bandwidth-smoke` preset's store CSV is byte-identical to the
//!    committed golden and byte-stable across shared-pool thread counts
//!    {1, 2, 4} — the determinism contract CI re-checks process-wide.

use adagp_sim::SimConfig;
use adagp_sweep::{presets, roofline, runner, store};
use std::path::PathBuf;

fn testdata(name: &str) -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join(format!("testdata/{name}"))
}

#[test]
fn roofline_knee_per_fig17_model_matches_committed_golden_bytes() {
    let golden =
        std::fs::read_to_string(testdata("roofline_fig17_golden.csv")).expect("committed golden");
    let points = roofline::run_roofline_grid(
        &presets::roofline(),
        &SimConfig::default(),
        roofline::KNEE_TOLERANCE,
    );
    let fresh = roofline::roofline_csv(&points);
    assert_eq!(
        fresh, golden,
        "roofline knees drifted from testdata/roofline_fig17_golden.csv; if \
         the contention model changed intentionally, regenerate it with \
         `cargo run --release -p adagp-bench --bin sweep -- roofline roofline \
         --quiet --csv crates/bench/testdata/roofline_fig17_golden.csv` and \
         explain the delta in the PR"
    );
    // The headline claim of the study: every fig17 model has a *finite*
    // knee and a nonzero spill under the default 128K-word buffer.
    for p in &points {
        assert!(
            p.knee_words_per_cycle < roofline::KNEE_MAX_BW,
            "{}: knee hit the search cap",
            p.spec.key()
        );
        assert!(p.spill_cycles > 0.0, "{}: expected spills", p.spec.key());
    }
}

#[test]
fn bandwidth_smoke_csv_matches_committed_golden_across_thread_counts() {
    let golden = std::fs::read_to_string(testdata("bandwidth_smoke_golden.csv"))
        .expect("committed bandwidth golden");
    let grid = presets::bandwidth_smoke();
    for threads in [1, 2, 4] {
        let fresh =
            adagp_runtime::with_threads(threads, || store::to_csv_string(&runner::run_grid(&grid)));
        assert_eq!(
            fresh, golden,
            "bandwidth-smoke CSV drifted at ADAGP_THREADS={threads}; if the \
             contention model changed intentionally, regenerate it with \
             `cargo run --release -p adagp-bench --bin sweep -- run \
             bandwidth-smoke --quiet --csv \
             crates/bench/testdata/bandwidth_smoke_golden.csv` and explain \
             the delta in the PR"
        );
    }
}

#[test]
fn bandwidth_grid_shows_the_contention_gradient() {
    // Within the committed bandwidth-smoke golden: at a fixed buffer,
    // higher bandwidth never slows the simulated run; at a fixed
    // bandwidth, a bigger buffer never spills more.
    let golden = store::StoredRun::load(&testdata("bandwidth_smoke_golden.csv")).expect("loads");
    let metric = |name: &str| {
        store::METRICS
            .iter()
            .position(|m| m.name == name)
            .expect("known metric")
    };
    let (sim_i, spill_i) = (metric("sim_cycles"), metric("spill_cycles"));
    for a in &golden.cells {
        for b in &golden.cells {
            if a.axes[..5] == b.axes[..5] && a.axes[6] == b.axes[6] {
                let (bw_a, bw_b): (u64, u64) =
                    (a.axes[5].parse().unwrap(), b.axes[5].parse().unwrap());
                if bw_a < bw_b {
                    assert!(
                        a.metrics[sim_i] >= b.metrics[sim_i],
                        "{}: more bandwidth slowed the sim",
                        a.key()
                    );
                }
            }
            if a.axes[..6] == b.axes[..6] {
                let (buf_a, buf_b): (u64, u64) =
                    (a.axes[6].parse().unwrap(), b.axes[6].parse().unwrap());
                if buf_a < buf_b {
                    assert!(
                        a.metrics[spill_i] >= b.metrics[spill_i],
                        "{}: a smaller buffer spilled less",
                        a.key()
                    );
                }
            }
        }
    }
}
