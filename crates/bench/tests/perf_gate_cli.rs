//! End-to-end checks of the `perf_gate` binary: the acceptance contract
//! is exit 0 on an unchanged workload, exit 1 on an injected 2×
//! slowdown, exit 2 on garbage input — driven through the real CLI, not
//! library calls.

use adagp_obs::bench::{EnvBlock, Snapshot, WorkloadStats};
use std::path::{Path, PathBuf};
use std::process::Command;

fn perf_gate() -> Command {
    // Integration tests sit next to the binaries under target/<profile>.
    let mut bin = std::env::current_exe().expect("test exe");
    bin.pop();
    if bin.ends_with("deps") {
        bin.pop();
    }
    Command::new(bin.join("perf_gate"))
}

fn run_gate(args: &[&str]) -> (i32, String) {
    let out = perf_gate().args(args).output().expect("run perf_gate");
    let text = format!(
        "{}{}",
        String::from_utf8_lossy(&out.stdout),
        String::from_utf8_lossy(&out.stderr)
    );
    (out.status.code().expect("exit code"), text)
}

fn snapshot(name: &str, workloads: &[(&str, u64, u64)]) -> Snapshot {
    let mut snap = Snapshot {
        name: name.to_string(),
        label: "test-fixture".to_string(),
        regenerate: format!("cargo run --release -p adagp-bench --bin {name}"),
        reps: 5,
        env: EnvBlock {
            adagp_threads: 1,
            nproc: 1,
        },
        workloads: Vec::new(),
    };
    for &(wname, median, mad) in workloads {
        snap.push_workload(
            wname,
            WorkloadStats {
                median_us: median,
                mad_us: mad,
                min_us: median.saturating_sub(mad),
            },
        );
    }
    snap
}

fn write(dir: &Path, file: &str, snap: &Snapshot) -> String {
    let path = dir.join(file);
    snap.write(&path).expect("write snapshot fixture");
    path.to_string_lossy().into_owned()
}

fn temp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("adagp-perf-gate-{tag}-{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("create temp dir");
    dir
}

#[test]
fn unchanged_workload_passes_and_double_slowdown_fails() {
    let dir = temp_dir("basic");
    let before = snapshot("kernels", &[("conv", 10_000, 100), ("matmul", 2_000, 50)]);
    let same = write(&dir, "same.json", &before);
    let base = write(&dir, "before.json", &before);

    // Re-run of an unchanged workload: identical medians, exit 0.
    let (code, out) = run_gate(&[&base, &same]);
    assert_eq!(code, 0, "{out}");
    assert!(out.contains("0 regressions"), "{out}");

    // Injected 2x slowdown on one workload: exit 1, regenerate hint.
    let slow = snapshot("kernels", &[("conv", 20_000, 100), ("matmul", 2_000, 50)]);
    let slow = write(&dir, "slow.json", &slow);
    let (code, out) = run_gate(&[&base, &slow]);
    assert_eq!(code, 1, "{out}");
    assert!(out.contains("REGRESS"), "{out}");
    assert!(out.contains("conv"), "{out}");
    assert!(
        out.contains("cargo run --release -p adagp-bench --bin kernels"),
        "regenerate hint missing: {out}"
    );

    // --report-only downgrades the regression to exit 0.
    let (code, out) = run_gate(&[&base, &slow, "--report-only"]);
    assert_eq!(code, 0, "{out}");
    assert!(out.contains("REGRESS"), "{out}");

    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn json_report_mirrors_the_text_verdicts() {
    let dir = temp_dir("json");
    let before = snapshot("kernels", &[("conv", 10_000, 100), ("matmul", 2_000, 50)]);
    let slow = snapshot("kernels", &[("conv", 20_000, 100)]);
    let b = write(&dir, "b.json", &before);
    let a = write(&dir, "a.json", &slow);
    let report = dir.join("gate.json");
    let (code, out) = run_gate(&[&b, &a, "--report-only", "--json", report.to_str().unwrap()]);
    assert_eq!(code, 0, "{out}");

    let text = std::fs::read_to_string(&report).expect("report written");
    let root = serde::json::parse_value(&text).expect("report parses");
    assert_eq!(
        root.field("schema").unwrap().as_str().unwrap(),
        "adagp-perfgate-v1"
    );
    let rows = match root.field("workloads").unwrap() {
        serde::Value::Array(rows) => rows.clone(),
        other => panic!("workloads is {other:?}"),
    };
    assert_eq!(rows.len(), 1, "one compared workload");
    assert_eq!(rows[0].field("workload").unwrap().as_str().unwrap(), "conv");
    assert_eq!(
        rows[0].field("verdict").unwrap().as_str().unwrap(),
        "REGRESS"
    );
    assert_eq!(
        rows[0].field("before_us").unwrap().as_u64().unwrap(),
        10_000
    );
    assert_eq!(rows[0].field("after_us").unwrap().as_u64().unwrap(), 20_000);
    let missing = match root.field("missing").unwrap() {
        serde::Value::Array(rows) => rows.clone(),
        other => panic!("missing is {other:?}"),
    };
    assert_eq!(missing.len(), 1, "matmul dropped from the after-side");
    assert_eq!(
        missing[0].field("workload").unwrap().as_str().unwrap(),
        "matmul"
    );
    let summary = root.field("summary").unwrap();
    assert_eq!(summary.field("compared").unwrap().as_u64().unwrap(), 1);
    assert_eq!(summary.field("regressions").unwrap().as_u64().unwrap(), 2);
    assert!(matches!(
        summary.field("passed").unwrap(),
        serde::Value::Bool(false)
    ));
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn noise_band_absorbs_mad_sized_wobble() {
    let dir = temp_dir("band");
    // 3 MADs each way + 5% floor: a 10% wobble on a high-MAD workload
    // stays inside the band...
    let before = snapshot("sweep", &[("smoke", 10_000, 400)]);
    let after = snapshot("sweep", &[("smoke", 11_000, 400)]);
    let b = write(&dir, "b.json", &before);
    let a = write(&dir, "a.json", &after);
    let (code, out) = run_gate(&[&b, &a]);
    assert_eq!(code, 0, "{out}");
    // ...but a tight --floor with tight MADs flags the same delta.
    let before = snapshot("sweep", &[("smoke", 10_000, 10)]);
    let after = snapshot("sweep", &[("smoke", 11_000, 10)]);
    let b = write(&dir, "tight-b.json", &before);
    let a = write(&dir, "tight-a.json", &after);
    let (code, out) = run_gate(&[&b, &a, "--floor", "2"]);
    assert_eq!(code, 1, "{out}");
    // Improvements never fail the gate.
    let (code, out) = run_gate(&[&a, &b, "--floor", "2"]);
    assert_eq!(code, 0, "{out}");
    assert!(out.contains("IMPROVE"), "{out}");
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn directories_pair_by_name_and_missing_workloads_fail() {
    let dir = temp_dir("dirs");
    let before_dir = dir.join("before");
    let after_dir = dir.join("after");
    std::fs::create_dir_all(&before_dir).unwrap();
    std::fs::create_dir_all(&after_dir).unwrap();
    write(
        &before_dir,
        "BENCH_kernels.json",
        &snapshot("kernels", &[("conv", 10_000, 100)]),
    );
    write(
        &before_dir,
        "BENCH_sweep.json",
        &snapshot("sweep", &[("smoke", 3_000, 30)]),
    );
    write(
        &after_dir,
        "BENCH_kernels.json",
        &snapshot("kernels", &[("conv", 10_100, 100)]),
    );
    write(
        &after_dir,
        "BENCH_sweep.json",
        &snapshot("sweep", &[("smoke", 3_010, 30)]),
    );
    let (code, out) = run_gate(&[before_dir.to_str().unwrap(), after_dir.to_str().unwrap()]);
    assert_eq!(code, 0, "{out}");
    assert!(out.contains("2 workloads compared"), "{out}");

    // Dropping a workload from the after-side is a failure, not a skip.
    write(
        &after_dir,
        "BENCH_kernels.json",
        &snapshot("kernels", &[("other", 1, 0)]),
    );
    let (code, out) = run_gate(&[before_dir.to_str().unwrap(), after_dir.to_str().unwrap()]);
    assert_eq!(code, 1, "{out}");
    assert!(out.contains("MISSING"), "{out}");
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn bad_input_is_exit_2_even_in_report_only() {
    let dir = temp_dir("bad");
    let good = write(&dir, "good.json", &snapshot("kernels", &[("conv", 10, 1)]));

    // Usage errors.
    let (code, _) = run_gate(&[]);
    assert_eq!(code, 2);
    let (code, _) = run_gate(&[&good, &good, "--bogus"]);
    assert_eq!(code, 2);

    // Unreadable / non-snapshot input.
    let garbage = dir.join("garbage.json");
    std::fs::write(&garbage, "not json").unwrap();
    let (code, out) = run_gate(&[&good, garbage.to_str().unwrap()]);
    assert_eq!(code, 2, "{out}");

    // MAD-band sanity violations are bad data, not noise: exit 2 even
    // under --report-only.
    let insane = dir.join("insane.json");
    let mut snap = snapshot("kernels", &[("conv", 10, 1)]);
    snap.workloads[0].1.mad_us = 1_000; // MAD > median: impossible
    std::fs::write(&insane, snap.to_json()).unwrap();
    let (code, out) = run_gate(&[&good, insane.to_str().unwrap(), "--report-only"]);
    assert_eq!(code, 2, "{out}");
    assert!(out.contains("mad_us"), "{out}");
    std::fs::remove_dir_all(&dir).ok();
}
