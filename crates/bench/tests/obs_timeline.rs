//! Closing the loop between measured and simulated timelines.
//!
//! 1. A pipelined training epoch recorded by `adagp-obs` must export a
//!    Chrome trace that parses under the workspace's own `serde::json`
//!    reader (the same one the sim trace tests use) and whose spans nest
//!    well-formed per lane — the "measured trace is Perfetto-loadable"
//!    gate.
//! 2. The measured stage occupancies from `PipelineStats` are compared
//!    against what `adagp-sim` predicts for a 3-stage pipeline with the
//!    measured mean stage durations. The anchor is the bottleneck stage
//!    (whichever has the largest mean duration — it flips between
//!    `train` and `predictor` across debug/release profiles): both
//!    domains must agree it runs hot. The tolerance is loose (wall
//!    clocks are noisy; the sim is idealized), but the test is
//!    non-degenerate: both occupancies must exceed 0.5 and agree to
//!    within 0.35.

use adagp_core::{AdaGp, AdaGpConfig};
use adagp_nn::containers::Sequential;
use adagp_nn::layers::{Conv2d, Flatten, Linear, Relu};
use adagp_nn::optim::Sgd;
use adagp_obs as obs;
use adagp_runtime::StageReport;
use adagp_sim::{SimBuilder, TaskKind, TaskSpec};
use adagp_tensor::{init, Prng};

const BATCHES: usize = 12;

fn model(rng: &mut Prng) -> Sequential {
    let mut m = Sequential::new();
    m.push(Conv2d::new(3, 8, 3, 1, 1, true, rng));
    m.push(Relu::new());
    m.push(Flatten::new());
    m.push(Linear::new(8 * 16 * 16, 10, true, rng));
    m
}

/// Runs one pipelined epoch (default config: warm-up, so every batch
/// exercises all three stages) and returns the stage reports.
fn pipelined_epoch() -> Vec<StageReport> {
    let mut rng = Prng::seed_from_u64(5);
    let mut m = model(&mut rng);
    let mut adagp = AdaGp::new(AdaGpConfig::default(), &mut m, &mut rng);
    let mut opt = Sgd::new(0.02, 0.9);
    let mut data_rng = Prng::seed_from_u64(17);
    let batches: Vec<(adagp_tensor::Tensor, Vec<usize>)> = (0..BATCHES)
        .map(|b| {
            (
                init::uniform(&[4, 3, 16, 16], -1.0, 1.0, &mut data_rng),
                vec![b % 10; 4],
            )
        })
        .collect();
    let report = adagp.train_epoch_pipelined(&mut m, &mut opt, BATCHES, 3, |b| batches[b].clone());
    assert_eq!(report.batches.len(), BATCHES);
    report.stages
}

#[test]
fn measured_trace_is_parseable_and_well_nested() {
    let _g = obs::test_guard();
    obs::set_enabled(true);
    let stages = pipelined_epoch();
    obs::set_enabled(false);
    assert_eq!(stages.len(), 3);

    let snap = obs::snapshot();
    assert!(snap.span_count() > 0, "pipelined epoch recorded no spans");
    let text = obs::chrome_trace(&snap, "pipelined epoch (measured)");
    let stats = obs::validate_chrome_trace(&text).expect("measured trace must validate");
    assert!(stats.spans > 0);
    assert!(
        stats.lanes >= 3,
        "expected main + datagen + predictor lanes, got {}",
        stats.lanes
    );
    // The named stage threads surfaced as named lanes.
    assert!(text.contains("adagp-datagen"), "datagen lane missing");
    assert!(text.contains("adagp-predictor"), "predictor lane missing");
    // Stage spans from all three stages made it in.
    for stage in ["datagen", "train", "predictor"] {
        assert!(
            snap.lanes
                .iter()
                .any(|l| l.spans.iter().any(|s| s.cat == "stage" && s.name == stage)),
            "no `{stage}` stage span recorded"
        );
    }
}

#[test]
fn measured_bottleneck_occupancy_matches_sim_prediction() {
    let _g = obs::test_guard();
    let stages = pipelined_epoch();

    // Model the 3-stage pipeline in adagp-sim with the measured mean
    // stage durations (nanoseconds as cycles): gen b -> train b ->
    // predict b, each stage serialized on its own unit resource.
    let mean_ns = |r: &StageReport| (r.busy.as_nanos() as u64 / r.items.max(1)).max(1);
    let durations: Vec<u64> = stages.iter().map(mean_ns).collect();
    let mut b = SimBuilder::new();
    let resources: Vec<_> = stages
        .iter()
        .map(|r| b.add_resource(r.name.clone(), 1))
        .collect();
    let mut prev: Vec<Option<usize>> = vec![None; stages.len()];
    for batch in 0..BATCHES {
        for (stage, (&resource, &duration)) in resources.iter().zip(&durations).enumerate() {
            let mut deps = Vec::new();
            if stage > 0 {
                deps.push(prev[stage - 1].expect("upstream task"));
            }
            prev[stage] = Some(b.add_task(TaskSpec {
                label: format!("{} b{batch}", stages[stage].name),
                kind: TaskKind::Forward,
                layer: None,
                resource: Some(resource),
                duration,
                deps,
                buffer_delta: 0,
            }));
        }
    }
    let result = b.simulate();

    // Anchor on the bottleneck: everything else waits on it, so both the
    // measurement and the prediction must put its occupancy high.
    let bottleneck = durations
        .iter()
        .enumerate()
        .max_by_key(|&(_, &d)| d)
        .expect("three stages")
        .0;
    let measured = stages[bottleneck].utilization();
    let predicted = result.utilization(resources[bottleneck]);
    assert!(
        measured > 0.0 && measured <= 1.0,
        "degenerate measured occupancy {measured}"
    );
    assert!(
        predicted > 0.0 && predicted <= 1.0,
        "degenerate predicted occupancy {predicted}"
    );

    // Loose agreement: the sim is an idealized pipeline (no queue-depth
    // stalls, mean durations), the measurement is wall clock on a shared
    // machine — but they must describe the same pipeline.
    assert!(
        (measured - predicted).abs() < 0.35,
        "measured `{}` occupancy {measured:.3} vs sim prediction {predicted:.3}",
        stages[bottleneck].name
    );
    // Non-degeneracy of the comparison itself: a pipeline bottleneck
    // runs hot in both domains.
    assert!(
        measured > 0.5 && predicted > 0.5,
        "bottleneck `{}` not hot: measured {measured:.3}, predicted {predicted:.3}",
        stages[bottleneck].name
    );
}
