//! Critical-path invariants, integration-level: the zero-slack chain
//! walk (`adagp_sim::critical_path` → `adagp_obs::crit`) must reproduce
//! the simulated makespan **bit-exactly** — not approximately — on every
//! cell of the fig17 grid and on seeded random contention mixes, and its
//! blame table must be a true partition of the makespan:
//!
//! 1. **Bit-exact chain** — summed chain-segment durations equal the
//!    engine's makespan, per cell × phase, with the full
//!    `validate_critpath` machine-check (contiguity, blame partition,
//!    queue-wait consistency) green on the serialized report.
//! 2. **Fractions partition** — blame fractions sum to 1 within 1e-9
//!    whenever the makespan is nonzero.
//! 3. **Bandwidth monotonicity of DRAM blame** — raising the DRAM
//!    bandwidth never *lengthens* the time the zero-slack chain spends
//!    on the dram lane (equivalently: walking the ladder down in
//!    bandwidth, dram blame is monotone non-decreasing), checked on the
//!    same seeded mixes as `contention_properties.rs`.

use adagp_accel::layer_cost::PredictorCostModel;
use adagp_accel::{AcceleratorConfig, AdaGpDesign, Dataflow};
use adagp_nn::models::shapes::LayerShape;
use adagp_obs::crit::{CritReport, FRACTION_TOLERANCE};
use adagp_sim::{critical_path, model_sim_layers, simulate_batch, Phase, SimConfig, StepSim};
use adagp_sweep::presets;
use adagp_sweep::shapes::cached_shapes;
use adagp_tensor::Prng;

/// Asserts every chain/blame invariant on one finished batch sim and
/// returns the report for further inspection.
fn checked_report(sim: &adagp_sim::BatchSim, context: &str) -> CritReport {
    let report = critical_path(&sim.result, context);
    assert_eq!(
        report.makespan,
        sim.makespan(),
        "{context}: report disagrees with the engine"
    );
    let chain_sum: u64 = report.chain.iter().map(|c| c.end - c.start).sum();
    assert_eq!(
        chain_sum,
        sim.makespan(),
        "{context}: chain is not bit-exact"
    );
    let blame_sum: u64 = report.blame.iter().map(|b| b.time).sum();
    assert_eq!(
        blame_sum,
        sim.makespan(),
        "{context}: blame does not partition the makespan"
    );
    if sim.makespan() > 0 {
        let fractions: f64 = report.blame.iter().map(|b| b.fraction).sum();
        assert!(
            (fractions - 1.0).abs() <= FRACTION_TOLERANCE,
            "{context}: blame fractions sum to {fractions}"
        );
    }
    adagp_obs::validate_critpath(&report.to_json())
        .unwrap_or_else(|e| panic!("{context}: serialized report invalid: {e}"));
    report
}

/// Total chain time blamed on the DRAM lane.
fn dram_blame(report: &CritReport) -> u64 {
    report
        .blame
        .iter()
        .filter(|b| b.lane == "dram")
        .map(|b| b.time)
        .sum()
}

#[test]
fn fig17_chains_are_bit_exact_for_every_cell_and_phase() {
    let grid = presets::speedup_figure(Dataflow::WeightStationary);
    let cells = grid.expand();
    assert_eq!(cells.len(), 117, "fig17 grid changed shape");
    let cfg = SimConfig::default();
    let checked: usize = adagp_runtime::pool()
        .parallel_map(cells, |spec| {
            let cell_cfg = adagp_sweep::cell_sim_config(&spec, &cfg);
            let shapes = cached_shapes(spec.model, spec.dataset.input_scale());
            let layers = model_sim_layers(
                &AcceleratorConfig::default(),
                spec.dataflow,
                &PredictorCostModel::default(),
                &shapes,
                &cell_cfg,
            );
            let step = StepSim::run(spec.design, &layers, &spec.schedule.mix(), &cell_cfg);
            for (phase, sim) in [
                ("baseline", &step.baseline),
                ("bp", &step.bp),
                ("gp", &step.gp),
            ] {
                checked_report(sim, &format!("{} {phase}", spec.key()));
            }
            3usize
        })
        .into_iter()
        .sum();
    assert_eq!(checked, 117 * 3);
}

/// The `contention_properties.rs` random model generator, verbatim: the
/// chain invariant must hold on the same distribution the monotonicity
/// properties are proven over.
fn random_shapes(rng: &mut Prng) -> Vec<LayerShape> {
    let n = 1 + (rng.next_u64() % 12) as usize;
    (0..n)
        .map(|i| {
            if rng.next_u64().is_multiple_of(4) {
                let in_f = 64 << (rng.next_u64() % 5);
                let out_f = 16 << (rng.next_u64() % 7);
                LayerShape::linear(format!("fc{i}"), in_f as usize, out_f as usize)
            } else {
                let in_ch = 1 + (rng.next_u64() % 512) as usize;
                let out_ch = 1 + (rng.next_u64() % 512) as usize;
                let spatial = 4 + (rng.next_u64() % 56) as usize;
                LayerShape::conv(format!("conv{i}"), in_ch, out_ch, 3, spatial)
            }
        })
        .collect()
}

fn phases() -> Vec<(Phase, Option<AdaGpDesign>)> {
    let mut cases = vec![(Phase::Baseline, None)];
    for d in AdaGpDesign::all() {
        cases.push((Phase::Bp, Some(d)));
        cases.push((Phase::Gp, Some(d)));
    }
    cases
}

const DATAFLOWS: [Dataflow; 4] = [
    Dataflow::WeightStationary,
    Dataflow::OutputStationary,
    Dataflow::InputStationary,
    Dataflow::RowStationary,
];

#[test]
fn seeded_contention_mixes_hold_the_chain_invariant() {
    let acfg = AcceleratorConfig::default();
    let pred = PredictorCostModel::default();
    let mut rng = Prng::seed_from_u64(0x0C0F_FEE5);
    let cases = phases();
    let bandwidths = [1024u64, 256, 64, 16, 4];
    let buffers = [1u64 << 22, 1 << 17, 1 << 13];
    for case in 0..200 {
        let shapes = random_shapes(&mut rng);
        let df = DATAFLOWS[(rng.next_u64() % 4) as usize];
        let batch = 1 + (rng.next_u64() % 32) as usize;
        let (phase, design) = cases[case % cases.len()];
        let cfg = SimConfig {
            batch,
            dram_words_per_cycle: Some(bandwidths[case % bandwidths.len()]),
            buffer_words: Some(buffers[case % buffers.len()]),
            ..SimConfig::default()
        };
        let layers = model_sim_layers(&acfg, df, &pred, &shapes, &cfg);
        let sim = simulate_batch(phase, design, &layers, &cfg);
        checked_report(&sim, &format!("case {case} ({phase:?} {design:?} {df:?})"));
    }
}

#[test]
fn more_bandwidth_never_lengthens_dram_blame() {
    let acfg = AcceleratorConfig::default();
    let pred = PredictorCostModel::default();
    let mut rng = Prng::seed_from_u64(0x0C0F_FEE5);
    let cases = phases();
    // Descending bandwidth: dram blame must be monotone non-decreasing
    // along the ladder (more bandwidth never adds DRAM time to the
    // zero-slack chain, just as it never lengthens the makespan).
    let bandwidths = [1024u64, 256, 64, 16, 4];
    for case in 0..40 {
        let shapes = random_shapes(&mut rng);
        let df = DATAFLOWS[(rng.next_u64() % 4) as usize];
        let batch = 1 + (rng.next_u64() % 32) as usize;
        let (phase, design) = cases[case % cases.len()];
        let base = SimConfig {
            batch,
            buffer_words: Some(1 << 15),
            ..SimConfig::default()
        };
        let layers = model_sim_layers(&acfg, df, &pred, &shapes, &base);
        let mut prev = 0u64;
        for &bw in &bandwidths {
            let cfg = SimConfig {
                dram_words_per_cycle: Some(bw),
                ..base
            };
            let sim = simulate_batch(phase, design, &layers, &cfg);
            let report = checked_report(&sim, &format!("case {case} bw {bw}"));
            let blame = dram_blame(&report);
            assert!(
                blame >= prev,
                "case {case}: raising bandwidth to {bw} w/c lengthened dram \
                 blame ({prev} -> {blame}) for {phase:?} {design:?} {df:?}"
            );
            prev = blame;
        }
    }
}
