//! End-to-end checks of the `sweep` binary's contention surface, driven
//! through the real executable (`CARGO_BIN_EXE_sweep`):
//!
//! * `sweep sim <grid> --no-contention` composes with the bandwidth
//!   grid's per-cell buffer/bandwidth overrides by *winning*: every
//!   `spill_cycles` value in the emitted CSV is exactly `0.000000`.
//! * The same grid with contention on reports nonzero spills — the flag
//!   is doing the silencing, not the grid.
//! * `sweep roofline` exits cleanly and reports a knee per cell.

use std::path::PathBuf;
use std::process::Command;

fn sweep() -> Command {
    Command::new(env!("CARGO_BIN_EXE_sweep"))
}

fn tmp(name: &str) -> PathBuf {
    std::env::temp_dir().join(format!("adagp-sweep-cli-{}-{name}", std::process::id()))
}

/// Runs `sweep sim bandwidth-smoke` with `extra` flags and returns the
/// spill_cycles column of the emitted CSV.
fn sim_spill_column(csv: &PathBuf, extra: &[&str]) -> Vec<String> {
    let mut cmd = sweep();
    cmd.args(["sim", "bandwidth-smoke", "--quiet", "--csv"])
        .arg(csv)
        .args(extra);
    let out = cmd.output().expect("sweep sim runs");
    assert!(
        out.status.success(),
        "sweep sim failed:\n{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let text = std::fs::read_to_string(csv).expect("CSV written");
    let header: Vec<&str> = text.lines().next().expect("header").split(',').collect();
    let spill = header
        .iter()
        .position(|&h| h == "spill_cycles")
        .expect("spill_cycles column");
    text.lines()
        .skip(1)
        .map(|l| l.split(',').nth(spill).expect("column present").to_string())
        .collect()
}

#[test]
fn no_contention_zeroes_spill_cycles_exactly_even_with_buffer_overrides() {
    let csv = tmp("no-contention.csv");
    let spills = sim_spill_column(&csv, &["--no-contention"]);
    assert_eq!(spills.len(), 8, "bandwidth-smoke has 8 cells");
    for (i, s) in spills.iter().enumerate() {
        assert_eq!(
            s, "0.000000",
            "cell {i}: --no-contention must zero spill_cycles exactly"
        );
    }
    std::fs::remove_file(&csv).ok();
}

#[test]
fn contention_on_reports_nonzero_spills_for_the_tight_buffer_cells() {
    let csv = tmp("contention.csv");
    let spills = sim_spill_column(&csv, &[]);
    assert!(
        spills.iter().any(|s| s != "0.000000"),
        "expected at least one spilling cell in bandwidth-smoke: {spills:?}"
    );
    std::fs::remove_file(&csv).ok();
}

#[test]
fn no_contention_composes_with_explicit_bandwidth_and_buffer_flags() {
    // The flag must win even when the CLI also passes the base knobs.
    let csv = tmp("composed.csv");
    let spills = sim_spill_column(
        &csv,
        &[
            "--bandwidth",
            "4",
            "--buffer-words",
            "1024",
            "--no-contention",
        ],
    );
    assert!(spills.iter().all(|s| s == "0.000000"), "{spills:?}");
    std::fs::remove_file(&csv).ok();
}

/// `sweep diff`'s documented exit-code contract, end to end: 0 for a
/// clean comparison, 1 when a metric regressed beyond tolerance, 2 for
/// usage errors — the codes CI branches on.
#[test]
fn diff_exit_codes_cover_clean_regressed_and_usage() {
    use adagp_sweep::store::{RunRecord, StoredCell};
    use adagp_sweep::{evaluate_cell, presets};

    let cells: Vec<StoredCell> = presets::smoke()
        .expand()
        .iter()
        .map(|s| StoredCell::from_evaluation(s, &evaluate_cell(s)))
        .collect();
    let write = |name: &str, cells: &[StoredCell]| {
        let path = tmp(name);
        let text = serde::json::to_string_pretty(&RunRecord::from_stored_cells("smoke", cells));
        std::fs::write(&path, text).expect("run record written");
        path
    };
    let before = write("diff-before.json", &cells);
    let mut worse = cells.clone();
    worse[0].metrics[0] *= 0.9; // speed-up down 10%: a regression
    let after = write("diff-after.json", &worse);

    let code = |args: &[&str]| {
        let out = sweep()
            .args(["diff"])
            .args(args)
            .output()
            .expect("sweep diff runs");
        out.status.code().expect("exit code")
    };
    let before_s = before.to_string_lossy().to_string();
    let after_s = after.to_string_lossy().to_string();
    assert_eq!(code(&[&before_s, &before_s]), 0, "identical runs are clean");
    assert_eq!(code(&[&before_s, &after_s]), 1, "regression exits 1");
    assert_eq!(
        code(&[&before_s, &after_s, "--tol", "0.5"]),
        0,
        "a loose tolerance absorbs the regression"
    );
    assert_eq!(code(&[&before_s]), 2, "missing <after> is a usage error");
    assert_eq!(
        code(&[&before_s, "/nonexistent/run.json"]),
        2,
        "unreadable input is an I/O error"
    );
    std::fs::remove_file(&before).ok();
    std::fs::remove_file(&after).ok();
}

#[test]
fn roofline_subcommand_reports_a_knee_per_cell() {
    let out = sweep()
        .args(["roofline", "bandwidth-smoke", "--quiet"])
        .output()
        .expect("sweep roofline runs");
    assert!(
        out.status.success(),
        "sweep roofline failed:\n{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(
        stdout.contains("8 cells"),
        "roofline summary missing:\n{stdout}"
    );
}
