//! End-to-end checks of the `sweep` binary's contention surface, driven
//! through the real executable (`CARGO_BIN_EXE_sweep`):
//!
//! * `sweep sim <grid> --no-contention` composes with the bandwidth
//!   grid's per-cell buffer/bandwidth overrides by *winning*: every
//!   `spill_cycles` value in the emitted CSV is exactly `0.000000`.
//! * The same grid with contention on reports nonzero spills — the flag
//!   is doing the silencing, not the grid.
//! * `sweep roofline` exits cleanly and reports a knee per cell.

use std::path::PathBuf;
use std::process::Command;

fn sweep() -> Command {
    Command::new(env!("CARGO_BIN_EXE_sweep"))
}

fn tmp(name: &str) -> PathBuf {
    std::env::temp_dir().join(format!("adagp-sweep-cli-{}-{name}", std::process::id()))
}

/// Runs `sweep sim bandwidth-smoke` with `extra` flags and returns the
/// spill_cycles column of the emitted CSV.
fn sim_spill_column(csv: &PathBuf, extra: &[&str]) -> Vec<String> {
    let mut cmd = sweep();
    cmd.args(["sim", "bandwidth-smoke", "--quiet", "--csv"])
        .arg(csv)
        .args(extra);
    let out = cmd.output().expect("sweep sim runs");
    assert!(
        out.status.success(),
        "sweep sim failed:\n{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let text = std::fs::read_to_string(csv).expect("CSV written");
    let header: Vec<&str> = text.lines().next().expect("header").split(',').collect();
    let spill = header
        .iter()
        .position(|&h| h == "spill_cycles")
        .expect("spill_cycles column");
    text.lines()
        .skip(1)
        .map(|l| l.split(',').nth(spill).expect("column present").to_string())
        .collect()
}

#[test]
fn no_contention_zeroes_spill_cycles_exactly_even_with_buffer_overrides() {
    let csv = tmp("no-contention.csv");
    let spills = sim_spill_column(&csv, &["--no-contention"]);
    assert_eq!(spills.len(), 8, "bandwidth-smoke has 8 cells");
    for (i, s) in spills.iter().enumerate() {
        assert_eq!(
            s, "0.000000",
            "cell {i}: --no-contention must zero spill_cycles exactly"
        );
    }
    std::fs::remove_file(&csv).ok();
}

#[test]
fn contention_on_reports_nonzero_spills_for_the_tight_buffer_cells() {
    let csv = tmp("contention.csv");
    let spills = sim_spill_column(&csv, &[]);
    assert!(
        spills.iter().any(|s| s != "0.000000"),
        "expected at least one spilling cell in bandwidth-smoke: {spills:?}"
    );
    std::fs::remove_file(&csv).ok();
}

#[test]
fn no_contention_composes_with_explicit_bandwidth_and_buffer_flags() {
    // The flag must win even when the CLI also passes the base knobs.
    let csv = tmp("composed.csv");
    let spills = sim_spill_column(
        &csv,
        &[
            "--bandwidth",
            "4",
            "--buffer-words",
            "1024",
            "--no-contention",
        ],
    );
    assert!(spills.iter().all(|s| s == "0.000000"), "{spills:?}");
    std::fs::remove_file(&csv).ok();
}

#[test]
fn roofline_subcommand_reports_a_knee_per_cell() {
    let out = sweep()
        .args(["roofline", "bandwidth-smoke", "--quiet"])
        .output()
        .expect("sweep roofline runs");
    assert!(
        out.status.success(),
        "sweep roofline failed:\n{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(
        stdout.contains("8 cells"),
        "roofline summary missing:\n{stdout}"
    );
}
