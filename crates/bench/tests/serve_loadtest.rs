//! Smoke coverage of the serve binaries through the real executables:
//!
//! * `serve_loadtest` at the acceptance scale (≥64 overlapping grids,
//!   ≥4 client threads) must PASS — bit-identical replies, exactly-once
//!   evaluation, graceful shutdown with a byte-stable flush.
//! * The `serve` CLI itself must come up, answer traffic, and drain
//!   cleanly on `POST /shutdown`.

use std::io::{BufRead, BufReader};
use std::process::{Command, Stdio};

#[test]
fn loadtest_smoke_passes_at_acceptance_scale() {
    let out = Command::new(env!("CARGO_BIN_EXE_serve_loadtest"))
        .args(["--clients", "4", "--grids", "64", "--seed", "11"])
        .output()
        .expect("serve_loadtest runs");
    let stdout = String::from_utf8_lossy(&out.stdout);
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(out.status.success(), "loadtest failed:\n{stdout}\n{stderr}");
    assert!(stdout.contains("loadtest: PASS"), "{stdout}");
    assert!(
        stdout.contains("evaluated exactly once"),
        "coalescing line missing:\n{stdout}"
    );
    assert!(
        stdout.contains("flush reloads byte-stable"),
        "flush line missing:\n{stdout}"
    );
}

#[test]
fn serve_cli_starts_serves_and_drains_on_shutdown() {
    let mut child = Command::new(env!("CARGO_BIN_EXE_serve"))
        .args(["--workers", "2", "--queue-depth", "8"])
        .stdout(Stdio::piped())
        .stderr(Stdio::piped())
        .spawn()
        .expect("serve starts");
    let mut lines = BufReader::new(child.stdout.take().expect("stdout")).lines();
    let banner = lines
        .next()
        .expect("serve prints its address")
        .expect("stdout is text");
    let addr: std::net::SocketAddr = banner
        .strip_prefix("listening on ")
        .unwrap_or_else(|| panic!("unexpected banner `{banner}`"))
        .parse()
        .expect("banner carries host:port");

    let health = adagp_serve::http_request(addr, "GET", "/health", None).expect("health");
    assert_eq!(health.status, 200);
    let grid = adagp_serve::submit_grid(addr, r#"{"preset":"smoke"}"#).expect("grid");
    assert_eq!(grid.done.cells, grid.announced_cells);
    assert_eq!(grid.done.evaluated, grid.done.cells, "cold serve evaluates");

    adagp_serve::client::request_shutdown(addr).expect("shutdown accepted");
    let status = child.wait().expect("serve exits");
    assert!(status.success(), "serve exited non-zero");
    let tail: Vec<String> = lines.map_while(Result::ok).collect();
    assert!(
        tail.iter().any(|l| l.starts_with("drained")),
        "drain banner missing: {tail:?}"
    );
    assert!(
        tail.iter().any(|l| l.contains("served")),
        "summary line missing: {tail:?}"
    );
}
