//! The no-perturbation contract of `adagp-obs`: turning span recording
//! on must not change a single output bit.
//!
//! Two representative workloads are checked, each at `ADAGP_THREADS ∈
//! {1, 4}` (via the `with_threads` override, so the environment stays
//! untouched):
//!
//! * a pool-parallel tensor kernel chain (the instrumented
//!   `scope_run` hot path), compared bit-for-bit;
//! * the smoke sweep grid's CSV (per-cell spans plus histograms on the
//!   instrumented runner), compared byte-for-byte.
//!
//! The recorder is process-global, so the tests serialize on
//! `obs::test_guard()`, which also leaves recording disabled and the
//! lanes clear for whoever runs next.

use adagp_obs as obs;
use adagp_runtime::with_threads;
use adagp_sweep::{presets, runner, store};
use adagp_tensor::{init, Prng};

/// Runs `f` with span recording forced on or off, restoring "off" after.
fn with_tracing<R>(on: bool, f: impl FnOnce() -> R) -> R {
    obs::set_enabled(on);
    let r = f();
    obs::set_enabled(false);
    r
}

/// A deterministic pool-parallel kernel chain, reduced to raw bits.
fn kernel_bits() -> Vec<u32> {
    let mut rng = Prng::seed_from_u64(11);
    let a = init::uniform(&[96, 64], -1.0, 1.0, &mut rng);
    let b = init::uniform(&[64, 80], -1.0, 1.0, &mut rng);
    let c = a.matmul(&b); // [96, 80]
    let d = c.matmul_tn(&a); // c^T a: [80, 64]
    let e = d.matmul_nt(&a); // d a^T: [80, 96]
    e.data().iter().map(|v| v.to_bits()).collect()
}

#[test]
fn kernels_are_bit_identical_with_tracing_on() {
    let _g = obs::test_guard();
    for threads in [1usize, 4] {
        let plain = with_threads(threads, || with_tracing(false, kernel_bits));
        let traced = with_threads(threads, || with_tracing(true, kernel_bits));
        assert_eq!(
            plain, traced,
            "tracing perturbed kernels at {threads} threads"
        );
    }
}

#[test]
fn sweep_csv_is_byte_identical_with_tracing_on() {
    let _g = obs::test_guard();
    let csv = |on: bool| {
        with_tracing(on, || {
            store::to_csv_string(&runner::run_grid(&presets::smoke()))
        })
    };
    for threads in [1usize, 4] {
        let plain = with_threads(threads, || csv(false));
        let traced = with_threads(threads, || csv(true));
        assert_eq!(
            plain, traced,
            "tracing perturbed the sweep at {threads} threads"
        );
        assert!(!plain.is_empty());
    }
    // The traced arms actually recorded something — the comparison above
    // must not pass vacuously because instrumentation was compiled out.
    assert!(
        obs::snapshot().span_count() > 0,
        "traced runs recorded no spans: the no-perturb check is vacuous"
    );
}
