//! Crash-injection battery for the shard-log execution path.
//!
//! The tentpole guarantee under test: **a sweep killed at any record
//! boundary resumes to a final CSV/JSON byte-identical to the
//! uninterrupted run's.** Three layers:
//!
//! 1. *All-boundaries sweep* — over a 78-cell grid, simulate a crash
//!    after every `K ∈ 0..=78` committed records (torn half-record
//!    appended, exactly the bytes the fault point writes), resume by
//!    appending the missing records, and byte-compare the merged
//!    CSV/JSON against the uninterrupted reference. Cells are evaluated
//!    once with real metrics and reused across boundaries, so the loop
//!    is I/O-bound.
//! 2. *Real resume path* — at sampled boundaries, the resume is the
//!    actual `run_sharded` (re-evaluating only what the log lacks), not
//!    a record replay.
//! 3. *Real process abort* — the `sweep` binary is killed by the
//!    `ADAGP_SHARD_FAULT_AFTER` fault point at every boundary of the
//!    smoke grid and re-invoked; the resumed CSV/JSON must equal the
//!    uninterrupted run's.

use adagp_sweep::grid::{DatasetScale, GridSpec, PhaseSchedule};
use adagp_sweep::shardlog::{
    self, merge_to_run, record_line, run_sharded, shard_file_name, ShardWriter,
};
use adagp_sweep::store::{stored_csv_string, stored_json_string, StoredCell};
use adagp_sweep::{evaluate_cells, Shard};
use std::io::Write;
use std::path::PathBuf;
use std::process::Command;

fn tmp_dir(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("adagp-shardcrash-{}-{name}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// The ≥50-cell battery grid: 13 models × 3 designs × 2 dataflows on
/// CIFAR10 = 78 cells (CIFAR-scale shapes keep evaluation cheap).
fn battery_grid() -> GridSpec {
    GridSpec {
        name: "crash-battery".to_string(),
        models: adagp_nn::models::CnnModel::all().to_vec(),
        datasets: vec![DatasetScale::Cifar10],
        designs: adagp_accel::AdaGpDesign::all().to_vec(),
        dataflows: vec![
            adagp_accel::Dataflow::WeightStationary,
            adagp_accel::Dataflow::RowStationary,
        ],
        schedules: vec![PhaseSchedule::Paper],
        bandwidths: vec![None],
        buffers: vec![None],
    }
}

/// Writes a crashed-at-boundary-`k` shard log: `k` committed records
/// followed by the torn half of record `k` (when one remains) — byte
/// for byte what the `ADAGP_SHARD_FAULT_AFTER=k` fault point leaves.
fn write_crashed_log(dir: &PathBuf, cells: &[StoredCell], k: usize) {
    std::fs::create_dir_all(dir).unwrap();
    let path = dir.join(shard_file_name(Shard::default()));
    let mut f = std::fs::File::create(&path).unwrap();
    for cell in &cells[..k] {
        let mut line = record_line(cell);
        line.push('\n');
        f.write_all(line.as_bytes()).unwrap();
    }
    if k < cells.len() {
        let mut torn = record_line(&cells[k]);
        torn.truncate(torn.len() / 2);
        f.write_all(torn.as_bytes()).unwrap();
    }
    f.sync_data().unwrap();
}

#[test]
fn every_record_boundary_resumes_to_byte_identical_outputs() {
    let grid = battery_grid();
    let specs = grid.expand();
    assert!(specs.len() >= 50, "battery grid must span ≥50 cells");
    // One real evaluation of the whole grid; every boundary scenario
    // reuses these records, so the 79-scenario loop stays I/O-bound.
    let cells: Vec<StoredCell> = evaluate_cells(specs)
        .iter()
        .map(|r| StoredCell::from_evaluation(&r.spec, &r.metrics))
        .collect();
    let reference_csv = stored_csv_string(&cells);
    let reference_json = stored_json_string(&grid.name, &cells);

    for k in 0..=cells.len() {
        let dir = tmp_dir(&format!("boundary-{k}"));
        write_crashed_log(&dir, &cells, k);
        // Resume: re-append exactly the records the committed prefix
        // lacks (the torn record's ID never committed, so it is owed).
        let committed: std::collections::HashSet<&str> =
            cells[..k].iter().map(|c| c.id.as_str()).collect();
        let mut w = ShardWriter::open(&dir, Shard::default()).unwrap();
        for cell in cells.iter().filter(|c| !committed.contains(c.id.as_str())) {
            w.append(cell).unwrap();
        }
        let run = merge_to_run(&dir, &grid).unwrap();
        assert!(run.is_complete(), "boundary {k}: {:?}", run.missing);
        // The torn tail (absent at the k == len boundary, where the
        // crash hit after the final fsync) is reported, never fatal.
        assert_eq!(
            run.skipped.len(),
            usize::from(k < cells.len()),
            "boundary {k}: {:?}",
            run.skipped
        );
        assert_eq!(
            run.to_csv_string(),
            reference_csv,
            "CSV differs at boundary {k}"
        );
        assert_eq!(
            run.to_json_string(&grid.name),
            reference_json,
            "JSON differs at boundary {k}"
        );
        std::fs::remove_dir_all(&dir).ok();
    }

    // Sampled boundaries drive the *real* resume path: run_sharded must
    // skip every committed cell and re-evaluate only the remainder.
    for k in [0, 1, cells.len() / 2, cells.len() - 1] {
        let dir = tmp_dir(&format!("resume-{k}"));
        write_crashed_log(&dir, &cells, k);
        let stats = run_sharded(&grid, Shard::default(), &dir, 16).unwrap();
        assert_eq!(
            (stats.resumed, stats.evaluated),
            (k, cells.len() - k),
            "boundary {k}"
        );
        let run = merge_to_run(&dir, &grid).unwrap();
        assert!(run.is_complete(), "boundary {k}: {:?}", run.missing);
        assert_eq!(
            run.to_csv_string(),
            reference_csv,
            "CSV differs at boundary {k}"
        );
        assert_eq!(
            run.to_json_string(&grid.name),
            reference_json,
            "JSON differs at boundary {k}"
        );
        std::fs::remove_dir_all(&dir).ok();
    }
}

/// Runs the real `sweep` binary, returning (status code or None on
/// signal, stdout).
fn sweep_cmd(args: &[&str], fault_after: Option<usize>) -> (Option<i32>, String) {
    let mut cmd = Command::new(env!("CARGO_BIN_EXE_sweep"));
    cmd.args(args);
    match fault_after {
        Some(n) => cmd.env("ADAGP_SHARD_FAULT_AFTER", n.to_string()),
        None => cmd.env_remove("ADAGP_SHARD_FAULT_AFTER"),
    };
    let out = cmd.output().expect("spawn sweep binary");
    (
        out.status.code(),
        String::from_utf8_lossy(&out.stdout).into_owned(),
    )
}

#[test]
fn aborted_sweep_process_resumes_to_byte_identical_outputs() {
    // The uninterrupted reference: one clean log-dir run of smoke.
    let ref_dir = tmp_dir("proc-ref");
    let ref_csv = ref_dir.join("ref.csv");
    let ref_json = ref_dir.join("ref.json");
    let (code, _) = sweep_cmd(
        &[
            "run",
            "smoke",
            "--quiet",
            "--log-dir",
            ref_dir.join("logs").to_str().unwrap(),
            "--csv",
            ref_csv.to_str().unwrap(),
            "--json",
            ref_json.to_str().unwrap(),
        ],
        None,
    );
    assert_eq!(code, Some(0));
    let reference_csv = std::fs::read_to_string(&ref_csv).unwrap();
    let reference_json = std::fs::read_to_string(&ref_json).unwrap();

    // Kill the binary at every record boundary of the 4-cell smoke
    // grid, then resume without the fault point.
    for k in 0..4 {
        let dir = tmp_dir(&format!("proc-{k}"));
        let logs = dir.join("logs");
        let (code, _) = sweep_cmd(
            &[
                "run",
                "smoke",
                "--quiet",
                "--log-dir",
                logs.to_str().unwrap(),
            ],
            Some(k),
        );
        assert_ne!(
            code,
            Some(0),
            "boundary {k}: the fault point must kill the run"
        );
        let csv = dir.join("out.csv");
        let json = dir.join("out.json");
        let (code, stdout) = sweep_cmd(
            &[
                "run",
                "smoke",
                "--quiet",
                "--log-dir",
                logs.to_str().unwrap(),
                "--csv",
                csv.to_str().unwrap(),
                "--json",
                json.to_str().unwrap(),
            ],
            None,
        );
        assert_eq!(code, Some(0), "boundary {k}: resume failed:\n{stdout}");
        assert!(
            stdout.contains(&format!("{k} resumed from log")),
            "boundary {k}: resume must skip the committed cells:\n{stdout}"
        );
        assert_eq!(
            std::fs::read_to_string(&csv).unwrap(),
            reference_csv,
            "CSV differs at boundary {k}"
        );
        assert_eq!(
            std::fs::read_to_string(&json).unwrap(),
            reference_json,
            "JSON differs at boundary {k}"
        );
        std::fs::remove_dir_all(&dir).ok();
    }
    std::fs::remove_dir_all(&ref_dir).ok();
}

#[test]
fn merge_subcommand_rebuilds_the_same_bytes_without_evaluating() {
    let dir = tmp_dir("merge-cli");
    let logs = dir.join("logs");
    let csv = dir.join("run.csv");
    let (code, _) = sweep_cmd(
        &[
            "run",
            "smoke",
            "--quiet",
            "--log-dir",
            logs.to_str().unwrap(),
            "--csv",
            csv.to_str().unwrap(),
        ],
        None,
    );
    assert_eq!(code, Some(0));
    let merged_csv = dir.join("merged.csv");
    let merged_json = dir.join("merged.json");
    let (code, stdout) = sweep_cmd(
        &[
            "merge",
            "smoke",
            "--log-dir",
            logs.to_str().unwrap(),
            "--csv",
            merged_csv.to_str().unwrap(),
            "--json",
            merged_json.to_str().unwrap(),
        ],
        None,
    );
    assert_eq!(code, Some(0), "{stdout}");
    assert_eq!(
        std::fs::read_to_string(&merged_csv).unwrap(),
        std::fs::read_to_string(&csv).unwrap()
    );
    // An incomplete merge refuses without --partial...
    let partial_logs = dir.join("partial-logs");
    let (code, _) = sweep_cmd(
        &[
            "run",
            "smoke",
            "--quiet",
            "--shard",
            "1/2",
            "--log-dir",
            partial_logs.to_str().unwrap(),
        ],
        None,
    );
    assert_eq!(code, Some(0));
    let partial_csv = dir.join("partial.csv");
    let (code, _) = sweep_cmd(
        &[
            "merge",
            "smoke",
            "--log-dir",
            partial_logs.to_str().unwrap(),
            "--csv",
            partial_csv.to_str().unwrap(),
        ],
        None,
    );
    assert_eq!(code, Some(2), "incomplete merge must be a hard error");
    assert!(!partial_csv.exists(), "no artifact on refusal");
    // ...and writes the present half with it.
    let (code, _) = sweep_cmd(
        &[
            "merge",
            "smoke",
            "--partial",
            "--log-dir",
            partial_logs.to_str().unwrap(),
            "--csv",
            partial_csv.to_str().unwrap(),
        ],
        None,
    );
    assert_eq!(code, Some(0));
    let partial_text = std::fs::read_to_string(&partial_csv).unwrap();
    assert_eq!(partial_text.lines().count(), 3, "header + 2 owned cells");
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn corrupted_shard_logs_never_panic_and_keep_every_intact_record() {
    // Seeded fuzz: take a real log, splice in corruption (truncated
    // tails, garbage bytes, duplicated and bit-flipped records), and
    // assert the loader recovers every record whose line survived
    // intact, reports the rest as line-numbered spans, and never
    // panics. The generator is a tiny deterministic xorshift so
    // failures reproduce exactly.
    let grid = GridSpec {
        name: "fuzz".to_string(),
        models: vec![
            adagp_nn::models::CnnModel::Vgg13,
            adagp_nn::models::CnnModel::ResNet50,
        ],
        datasets: vec![DatasetScale::Cifar10],
        designs: adagp_accel::AdaGpDesign::all().to_vec(),
        dataflows: vec![adagp_accel::Dataflow::WeightStationary],
        schedules: vec![PhaseSchedule::Paper],
        bandwidths: vec![None],
        buffers: vec![None],
    };
    let cells: Vec<StoredCell> = evaluate_cells(grid.expand())
        .iter()
        .map(|r| StoredCell::from_evaluation(&r.spec, &r.metrics))
        .collect();
    let lines: Vec<String> = cells.iter().map(record_line).collect();

    let mut state: u64 = 0x5eed_1234_dead_beef;
    let mut next = move || {
        state ^= state << 13;
        state ^= state >> 7;
        state ^= state << 17;
        state
    };

    for round in 0..200 {
        // Assemble a log: each record intact, duplicated, bit-flipped,
        // replaced by garbage, or dropped; maybe a torn tail at the end.
        let mut file = Vec::new();
        let mut intact = Vec::new(); // (cell index) per intact line
        for (i, line) in lines.iter().enumerate() {
            match next() % 5 {
                0 => {
                    // Intact.
                    file.extend_from_slice(line.as_bytes());
                    file.push(b'\n');
                    intact.push(i);
                }
                1 => {
                    // Duplicated (both intact: last write wins, same bytes).
                    for _ in 0..2 {
                        file.extend_from_slice(line.as_bytes());
                        file.push(b'\n');
                        intact.push(i);
                    }
                }
                2 => {
                    // Committed but undecodable: the line is cut mid-object
                    // (a single flipped byte could still parse — a digit for
                    // a digit — so the corruption must be structural).
                    file.extend_from_slice(&line.as_bytes()[..line.len() / 2]);
                    file.push(b'\n');
                }
                3 => {
                    // Pure garbage line (possibly invalid UTF-8).
                    let len = (next() as usize) % 40 + 1;
                    for _ in 0..len {
                        let b = (next() % 256) as u8;
                        file.push(if b == b'\n' { b'x' } else { b });
                    }
                    file.push(b'\n');
                }
                _ => {} // Dropped.
            }
        }
        if next() % 3 == 0 && !lines.is_empty() {
            // Torn tail: a newline-less prefix of a random record.
            let line = &lines[(next() as usize) % lines.len()];
            let cut = (next() as usize) % line.len() + 1;
            file.extend_from_slice(&line.as_bytes()[..cut.min(line.len() - 1)]);
        }

        let dir = tmp_dir(&format!("fuzz-{round}"));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join(shard_file_name(Shard::default()));
        std::fs::write(&path, &file).unwrap();

        let load = shardlog::load_shard(&path).unwrap();
        // Every intact line is recovered, in order, bit-exactly.
        assert_eq!(load.cells.len(), intact.len(), "round {round}");
        for (got, &want) in load.cells.iter().zip(&intact) {
            assert_eq!(got.id, cells[want].id, "round {round}");
            for (a, b) in got.metrics.iter().zip(&cells[want].metrics) {
                assert_eq!(a.to_bits(), b.to_bits(), "round {round}");
            }
        }
        // Skipped spans carry sane, ordered line numbers.
        let mut last_end = 0;
        for span in &load.skipped {
            assert!(span.first_line > last_end, "round {round}: {span:?}");
            assert!(span.last_line >= span.first_line, "round {round}: {span:?}");
            last_end = span.last_line;
            assert!(!span.reason.is_empty(), "round {round}");
        }
        // A full merge of the corrupted log still returns every intact
        // cell (dedup by ID), and never invents one.
        let merged = shardlog::merge_dir(&dir).unwrap();
        let unique: std::collections::HashSet<&str> =
            intact.iter().map(|&i| cells[i].id.as_str()).collect();
        assert_eq!(merged.by_id.len(), unique.len(), "round {round}");
        std::fs::remove_dir_all(&dir).ok();
    }
}
