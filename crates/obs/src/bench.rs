//! The bench-snapshot registry: one schema for every `BENCH_*.json`
//! perf-trajectory point the repo commits.
//!
//! The ROADMAP's standing instruction is to keep committing perf
//! snapshots so the reproduced speedups have a machine-checkable
//! trajectory. Before this module each bench binary invented its own
//! JSON shape, so nothing could read two files and compare them. Now
//! every bench binary emits a [`Snapshot`]:
//!
//! * an identifying `name` plus a git-describe-able `label` (so a point
//!   on the trajectory says *which revision* it measured);
//! * the exact `regenerate` command, printed verbatim by `perf_gate`
//!   when a comparison fails;
//! * `reps` and per-workload robust statistics — `{median_us, mad_us,
//!   min_us}`. Median and MAD (median absolute deviation) rather than
//!   mean/stddev because bench runs on shared runners have heavy
//!   one-sided tails; MAD gives `perf_gate` a noise band that a single
//!   slow rep cannot inflate;
//! * an environment block ([`EnvBlock`]: `ADAGP_THREADS`, nproc) so a
//!   1-thread laptop point is never silently compared against an
//!   8-thread CI point — `perf_gate` warns when env blocks differ.
//!
//! [`Snapshot::sanity`] checks the *internal* invariants (`min ≤
//! median`, `mad ≤ median` — always true of MAD over nonnegative
//! samples, so a violation means a corrupted or hand-edited file);
//! `obs_check bench` runs it over every committed `BENCH_*.json` in CI.

use serde::Value;
use std::path::Path;

/// Schema tag every snapshot carries.
pub const SNAPSHOT_SCHEMA: &str = "adagp-bench-snapshot-v1";

/// Environment variable overriding the git-derived snapshot label.
pub const LABEL_ENV: &str = "ADAGP_BENCH_LABEL";

/// Robust summary of one workload's repetition samples, microseconds.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WorkloadStats {
    /// Median wall time per rep.
    pub median_us: u64,
    /// Median absolute deviation from the median — the noise scale
    /// `perf_gate` turns into a comparison band.
    pub mad_us: u64,
    /// Fastest rep — the "nothing interfered" floor.
    pub min_us: u64,
}

fn median(sorted: &[u64]) -> u64 {
    let n = sorted.len();
    if n % 2 == 1 {
        sorted[n / 2]
    } else {
        // Midpoint of the central pair; the sum cannot overflow in
        // practice (samples are run durations), but stay defensive.
        sorted[n / 2 - 1] / 2 + sorted[n / 2] / 2 + (sorted[n / 2 - 1] % 2 + sorted[n / 2] % 2) / 2
    }
}

impl WorkloadStats {
    /// Summarizes raw per-rep samples (µs). Panics on an empty slice —
    /// a bench that measured nothing has no statistics to report.
    pub fn from_samples(samples: &[u64]) -> WorkloadStats {
        assert!(!samples.is_empty(), "no samples to summarize");
        let mut sorted = samples.to_vec();
        sorted.sort_unstable();
        let med = median(&sorted);
        let mut dev: Vec<u64> = sorted.iter().map(|&s| s.abs_diff(med)).collect();
        dev.sort_unstable();
        WorkloadStats {
            median_us: med,
            mad_us: median(&dev),
            min_us: sorted[0],
        }
    }

    fn to_value(self) -> Value {
        Value::object(vec![
            ("median_us", Value::UInt(self.median_us)),
            ("mad_us", Value::UInt(self.mad_us)),
            ("min_us", Value::UInt(self.min_us)),
        ])
    }

    fn from_value(v: &Value, ctx: &str) -> Result<WorkloadStats, String> {
        let num = |k: &str| {
            v.field(k)
                .ok()
                .and_then(Value::as_u64)
                .ok_or_else(|| format!("{ctx}: missing or non-integer `{k}`"))
        };
        Ok(WorkloadStats {
            median_us: num("median_us")?,
            mad_us: num("mad_us")?,
            min_us: num("min_us")?,
        })
    }
}

/// The conditions a snapshot was measured under.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct EnvBlock {
    /// Worker threads the runtime pool was configured for.
    pub adagp_threads: usize,
    /// Hardware parallelism of the measuring host.
    pub nproc: usize,
}

impl EnvBlock {
    /// Captures the current host: `nproc` from the OS, the thread count
    /// from the caller (obs sits *below* the runtime crate, so the pool
    /// width has to be passed in).
    pub fn current(adagp_threads: usize) -> EnvBlock {
        EnvBlock {
            adagp_threads,
            nproc: std::thread::available_parallelism().map_or(1, usize::from),
        }
    }
}

/// One point on the perf trajectory — the payload of a `BENCH_*.json`.
#[derive(Debug, Clone, PartialEq)]
pub struct Snapshot {
    /// Bench identity (e.g. `obs_overhead`, `kernels`, `sweep`).
    pub name: String,
    /// Revision label: `ADAGP_BENCH_LABEL`, else `git describe`, else
    /// `unversioned`.
    pub label: String,
    /// The command that regenerates this file, verbatim.
    pub regenerate: String,
    /// Repetitions per workload.
    pub reps: u64,
    /// Measurement conditions.
    pub env: EnvBlock,
    /// Per-workload statistics, in insertion order.
    pub workloads: Vec<(String, WorkloadStats)>,
}

/// Resolves the snapshot label: `ADAGP_BENCH_LABEL` wins, then
/// `git describe --tags --always --dirty`, then `"unversioned"`.
pub fn snapshot_label() -> String {
    if let Ok(label) = std::env::var(LABEL_ENV) {
        if !label.is_empty() {
            return label;
        }
    }
    std::process::Command::new("git")
        .args(["describe", "--tags", "--always", "--dirty"])
        .output()
        .ok()
        .filter(|out| out.status.success())
        .and_then(|out| String::from_utf8(out.stdout).ok())
        .map(|s| s.trim().to_string())
        .filter(|s| !s.is_empty())
        .unwrap_or_else(|| "unversioned".to_string())
}

impl Snapshot {
    /// Starts a snapshot with the label resolved from the environment.
    pub fn new(name: &str, regenerate: &str, reps: u64, env: EnvBlock) -> Snapshot {
        Snapshot {
            name: name.to_string(),
            label: snapshot_label(),
            regenerate: regenerate.to_string(),
            reps,
            env,
            workloads: Vec::new(),
        }
    }

    /// Appends one workload's summarized samples.
    pub fn push_workload(&mut self, name: &str, stats: WorkloadStats) {
        self.workloads.push((name.to_string(), stats));
    }

    /// Looks a workload up by name.
    pub fn workload(&self, name: &str) -> Option<WorkloadStats> {
        self.workloads
            .iter()
            .find(|(n, _)| n == name)
            .map(|&(_, s)| s)
    }

    /// Renders the snapshot as pretty JSON (trailing newline included).
    pub fn to_json(&self) -> String {
        let workloads = Value::Object(
            self.workloads
                .iter()
                .map(|(n, s)| (n.clone(), s.to_value()))
                .collect(),
        );
        let root = Value::object(vec![
            ("schema", Value::String(SNAPSHOT_SCHEMA.to_string())),
            ("name", Value::String(self.name.clone())),
            ("label", Value::String(self.label.clone())),
            ("regenerate", Value::String(self.regenerate.clone())),
            ("reps", Value::UInt(self.reps)),
            (
                "env",
                Value::object(vec![
                    ("adagp_threads", Value::UInt(self.env.adagp_threads as u64)),
                    ("nproc", Value::UInt(self.env.nproc as u64)),
                ]),
            ),
            ("workloads", workloads),
        ]);
        let mut out = serde::json::to_string_pretty(&root);
        out.push('\n');
        out
    }

    /// Parses a snapshot from its JSON form.
    ///
    /// # Errors
    ///
    /// Returns a description of the first missing field, wrong type, or
    /// wrong schema tag.
    pub fn parse(text: &str) -> Result<Snapshot, String> {
        let root = serde::json::parse_value(text).map_err(|e| format!("not JSON: {e}"))?;
        let str_field = |k: &str| {
            root.field(k)
                .ok()
                .and_then(Value::as_str)
                .map(str::to_string)
                .ok_or_else(|| format!("missing or non-string `{k}`"))
        };
        let schema = str_field("schema")?;
        if schema != SNAPSHOT_SCHEMA {
            return Err(format!("schema `{schema}` is not `{SNAPSHOT_SCHEMA}`"));
        }
        let reps = root
            .field("reps")
            .ok()
            .and_then(Value::as_u64)
            .ok_or("missing or non-integer `reps`")?;
        let env = root.field("env").map_err(|_| "missing `env` block")?;
        let env_num = |k: &str| {
            env.field(k)
                .ok()
                .and_then(Value::as_u64)
                .ok_or_else(|| format!("env: missing or non-integer `{k}`"))
        };
        let env = EnvBlock {
            adagp_threads: env_num("adagp_threads")? as usize,
            nproc: env_num("nproc")? as usize,
        };
        let Value::Object(entries) = root
            .field("workloads")
            .map_err(|_| "missing `workloads` object")?
        else {
            return Err("`workloads` is not an object".to_string());
        };
        let mut workloads = Vec::with_capacity(entries.len());
        for (wname, v) in entries {
            workloads.push((
                wname.clone(),
                WorkloadStats::from_value(v, &format!("workload `{wname}`"))?,
            ));
        }
        Ok(Snapshot {
            name: str_field("name")?,
            label: str_field("label")?,
            regenerate: str_field("regenerate")?,
            reps,
            env,
            workloads,
        })
    }

    /// Reads and parses a snapshot file.
    ///
    /// # Errors
    ///
    /// I/O and parse errors, prefixed with the path.
    pub fn load(path: &Path) -> Result<Snapshot, String> {
        let text = std::fs::read_to_string(path).map_err(|e| format!("{}: {e}", path.display()))?;
        Snapshot::parse(&text).map_err(|e| format!("{}: {e}", path.display()))
    }

    /// Writes the JSON form to `path`.
    ///
    /// # Errors
    ///
    /// Any I/O error from creating or writing the file.
    pub fn write(&self, path: &Path) -> std::io::Result<()> {
        std::fs::write(path, self.to_json())
    }

    /// Internal-consistency check — the MAD-band sanity `perf_gate` and
    /// `obs_check bench` hard-gate on: at least one workload, `reps ≥
    /// 1`, and per workload `min_us ≤ median_us` and `mad_us ≤
    /// median_us`. The last holds for MAD over any nonnegative sample
    /// set (deviations below the median are at most the median itself,
    /// and at least half the deviations are on that side), so a
    /// violation means the file did not come from
    /// [`WorkloadStats::from_samples`].
    ///
    /// # Errors
    ///
    /// Returns a description of the first violated invariant.
    pub fn sanity(&self) -> Result<(), String> {
        if self.workloads.is_empty() {
            return Err(format!("snapshot `{}` has no workloads", self.name));
        }
        if self.reps == 0 {
            return Err(format!("snapshot `{}` has reps = 0", self.name));
        }
        for (wname, s) in &self.workloads {
            if s.min_us > s.median_us {
                return Err(format!(
                    "workload `{wname}`: min_us {} exceeds median_us {}",
                    s.min_us, s.median_us
                ));
            }
            if s.mad_us > s.median_us {
                return Err(format!(
                    "workload `{wname}`: mad_us {} exceeds median_us {} \
                     (impossible for MAD over nonnegative samples)",
                    s.mad_us, s.median_us
                ));
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stats_are_robust_to_one_sided_tails() {
        // One pathological 100ms rep must not move median or MAD much.
        let s = WorkloadStats::from_samples(&[100, 103, 101, 99, 100_000, 102, 98]);
        assert_eq!(s.median_us, 101);
        assert_eq!(s.min_us, 98);
        assert!(s.mad_us <= 3, "MAD inflated by the outlier: {}", s.mad_us);
    }

    #[test]
    fn median_handles_even_counts_and_singletons() {
        assert_eq!(WorkloadStats::from_samples(&[7]).median_us, 7);
        assert_eq!(WorkloadStats::from_samples(&[4, 8]).median_us, 6);
        assert_eq!(WorkloadStats::from_samples(&[3, 4]).median_us, 3);
        let s = WorkloadStats::from_samples(&[10, 20, 30, 40]);
        assert_eq!((s.median_us, s.min_us), (25, 10));
    }

    #[test]
    fn snapshot_round_trips_through_json() {
        let mut snap = Snapshot {
            name: "unit".into(),
            label: "v1.2.3-4-gabcdef".into(),
            regenerate: "cargo run --release -p adagp-bench --bin unit".into(),
            reps: 9,
            env: EnvBlock {
                adagp_threads: 3,
                nproc: 8,
            },
            workloads: Vec::new(),
        };
        snap.push_workload("conv", WorkloadStats::from_samples(&[500, 510, 505]));
        snap.push_workload("matmul", WorkloadStats::from_samples(&[90, 95, 92]));
        let parsed = Snapshot::parse(&snap.to_json()).expect("round trip");
        assert_eq!(parsed, snap);
        assert_eq!(parsed.workload("conv").unwrap().median_us, 505);
        assert!(parsed.workload("absent").is_none());
        parsed.sanity().expect("generated snapshots are sane");
    }

    #[test]
    fn parse_rejects_malformed_snapshots() {
        assert!(Snapshot::parse("not json").is_err());
        assert!(Snapshot::parse("{}").unwrap_err().contains("schema"));
        let wrong_schema = r#"{"schema": "something-else"}"#;
        assert!(Snapshot::parse(wrong_schema)
            .unwrap_err()
            .contains("something-else"));
        let no_stats = r#"{
            "schema": "adagp-bench-snapshot-v1", "name": "x", "label": "l",
            "regenerate": "cmd", "reps": 3,
            "env": {"adagp_threads": 1, "nproc": 1},
            "workloads": {"w": {"median_us": 5}}
        }"#;
        assert!(Snapshot::parse(no_stats).unwrap_err().contains("mad_us"));
    }

    #[test]
    fn sanity_flags_corrupted_statistics() {
        let base = |median, mad, min| Snapshot {
            name: "s".into(),
            label: "l".into(),
            regenerate: "cmd".into(),
            reps: 3,
            env: EnvBlock {
                adagp_threads: 1,
                nproc: 1,
            },
            workloads: vec![(
                "w".into(),
                WorkloadStats {
                    median_us: median,
                    mad_us: mad,
                    min_us: min,
                },
            )],
        };
        base(100, 5, 90).sanity().expect("sane snapshot");
        assert!(base(100, 5, 150).sanity().unwrap_err().contains("min_us"));
        assert!(base(100, 200, 90).sanity().unwrap_err().contains("mad_us"));
        let mut empty = base(100, 5, 90);
        empty.workloads.clear();
        assert!(empty.sanity().unwrap_err().contains("no workloads"));
        let mut zero_reps = base(100, 5, 90);
        zero_reps.reps = 0;
        assert!(zero_reps.sanity().unwrap_err().contains("reps"));
    }

    #[test]
    fn mad_is_never_above_median_for_nonnegative_samples() {
        // Property sweep over adversarial shapes — the proof obligation
        // behind the `sanity` hard gate.
        let cases: &[&[u64]] = &[
            &[0],
            &[0, 0, 0],
            &[0, u64::MAX / 2],
            &[1, 1_000_000],
            &[5, 5, 5, 5, 500],
            &[1, 2, 3, 4, 5, 6, 7, 8, 9],
            // Even counts stress the floored-midpoint median.
            &[0, 1],
            &[3, 4],
            &[0, 0, 100, 1000],
            &[0, 0, 100, 101],
            &[10, 10, 1000, 1000],
            &[0, 90, 110, 1000],
            &[u64::MAX - 1, u64::MAX],
        ];
        for samples in cases {
            let s = WorkloadStats::from_samples(samples);
            assert!(
                s.mad_us <= s.median_us,
                "MAD {} > median {} for {samples:?}",
                s.mad_us,
                s.median_us
            );
        }
    }
}
