//! The span recorder: per-thread bounded buffers with drop counting and
//! no hot-path locks.
//!
//! ## Design
//!
//! Each recording thread owns one [`LaneBuf`] — a fixed-capacity append
//! buffer it alone writes. A slot is published by writing the record and
//! then storing the new length with `Release`; the snapshotting reader
//! loads the length with `Acquire` and only touches slots below it, so
//! the single-writer/single-reader pair needs no lock and no CAS. When a
//! lane fills up, further spans are **dropped and counted** — tracing a
//! long run degrades to a truncated trace, never to unbounded memory or
//! a stalled hot path.
//!
//! The only lock in the module guards the lane *registry*, taken once per
//! thread (at lane creation) and once per snapshot — never per span.
//!
//! ## Gating
//!
//! Recording is off unless [`set_enabled`]`(true)` ran (the
//! [`crate::trace::trace_guard_from_env`] helper does this when
//! `ADAGP_TRACE` is set). Disabled, every entry point is one relaxed
//! atomic load and an early return: no clock reads, no allocation.
//! Observability must never perturb results — the recorder observes wall
//! time and copies labels, it never touches the traced computation's
//! data, and the `obs_noperturb` battery in `adagp-bench` holds it to
//! that (bit-identical kernel and sweep outputs, tracing on vs off).

use std::cell::UnsafeCell;
use std::mem::MaybeUninit;
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex, OnceLock};
use std::time::Instant;

/// Spans one lane (thread) can hold before dropping. ~64 bytes a span,
/// so a full lane costs a few megabytes.
pub const LANE_CAPACITY: usize = 1 << 16;

/// One completed span, timestamped in nanoseconds since the process
/// trace epoch.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SpanRecord {
    /// Display name (e.g. a stage name or a sweep cell key).
    pub name: String,
    /// Category — groups spans in the trace viewer (e.g. `stage`,
    /// `pool`, `sweep`, `serve`).
    pub cat: &'static str,
    /// Start, nanoseconds since the trace epoch.
    pub start_ns: u64,
    /// End, nanoseconds since the trace epoch.
    pub end_ns: u64,
}

/// A single-writer bounded span buffer (one per recording thread).
struct LaneBuf {
    name: String,
    slots: Box<[UnsafeCell<MaybeUninit<SpanRecord>>]>,
    /// Published slot count. The owning thread stores with `Release`
    /// after writing slot `len`; readers load with `Acquire` and stay
    /// strictly below it.
    len: AtomicUsize,
    dropped: AtomicU64,
}

// SAFETY: slots below `len` are only written once (before the Release
// store that published them) and are read-only afterwards; the slot at
// `len` is exclusively the owning thread's until published. See `push`
// and `snapshot_into`.
unsafe impl Sync for LaneBuf {}
unsafe impl Send for LaneBuf {}

impl LaneBuf {
    fn new(name: String) -> Self {
        let mut slots = Vec::with_capacity(LANE_CAPACITY);
        slots.resize_with(LANE_CAPACITY, || UnsafeCell::new(MaybeUninit::uninit()));
        LaneBuf {
            name,
            slots: slots.into_boxed_slice(),
            len: AtomicUsize::new(0),
            dropped: AtomicU64::new(0),
        }
    }

    /// Appends one record (owning thread only).
    fn push(&self, rec: SpanRecord) {
        let len = self.len.load(Ordering::Relaxed);
        if len >= self.slots.len() {
            self.dropped.fetch_add(1, Ordering::Relaxed);
            return;
        }
        // SAFETY: only the owning thread pushes, and slot `len` is not
        // yet published, so this is the sole reference to it.
        unsafe { (*self.slots[len].get()).write(rec) };
        self.len.store(len + 1, Ordering::Release);
    }

    /// Copies the published records out (any thread).
    fn snapshot_into(&self, out: &mut Vec<SpanRecord>) {
        let len = self.len.load(Ordering::Acquire);
        out.reserve(len);
        for slot in &self.slots[..len] {
            // SAFETY: every slot below the Acquire-loaded `len` was fully
            // written before its Release publication and is never written
            // again (the buffer is append-only).
            out.push(unsafe { (*slot.get()).assume_init_ref() }.clone());
        }
    }
}

impl Drop for LaneBuf {
    fn drop(&mut self) {
        let len = *self.len.get_mut();
        for slot in &mut self.slots[..len] {
            // SAFETY: slots below `len` are initialized; `&mut self`
            // proves no reader is live.
            unsafe { slot.get_mut().assume_init_drop() };
        }
    }
}

/// All spans one lane held at snapshot time.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LaneSnapshot {
    /// Lane display name (the thread name when it had one).
    pub name: String,
    /// Published spans, in record (≈ completion) order.
    pub spans: Vec<SpanRecord>,
    /// Spans dropped because the lane was full.
    pub dropped: u64,
}

impl LaneSnapshot {
    /// `(earliest start, latest end)` across the lane's spans, or `None`
    /// for an empty lane. Spans complete out of record order, so this
    /// scans rather than trusting the first/last record.
    pub fn extent_ns(&self) -> Option<(u64, u64)> {
        let first = self.spans.iter().map(|s| s.start_ns).min()?;
        let last = self.spans.iter().map(|s| s.end_ns.max(s.start_ns)).max()?;
        Some((first, last))
    }
}

/// A point-in-time copy of every lane.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct TraceSnapshot {
    /// One entry per lane, in lane-registration order.
    pub lanes: Vec<LaneSnapshot>,
}

impl TraceSnapshot {
    /// Total spans across all lanes.
    pub fn span_count(&self) -> usize {
        self.lanes.iter().map(|l| l.spans.len()).sum()
    }

    /// Total dropped spans across all lanes.
    pub fn dropped(&self) -> u64 {
        self.lanes.iter().map(|l| l.dropped).sum()
    }
}

static ENABLED: AtomicBool = AtomicBool::new(false);
static EPOCH: OnceLock<Instant> = OnceLock::new();
static LANES: Mutex<Vec<Arc<LaneBuf>>> = Mutex::new(Vec::new());
static LANE_SEQ: AtomicUsize = AtomicUsize::new(0);

thread_local! {
    static MY_LANE: std::cell::OnceCell<Arc<LaneBuf>> = const { std::cell::OnceCell::new() };
}

/// Whether span recording is on. One relaxed load — branch on this
/// before doing any per-span work.
#[inline]
pub fn enabled() -> bool {
    ENABLED.load(Ordering::Relaxed)
}

/// Turns span recording on or off. Typically driven by
/// [`crate::trace::trace_guard_from_env`]; tests flip it directly.
pub fn set_enabled(on: bool) {
    if on {
        // Pin the epoch before the first span so timestamps are positive.
        let _ = EPOCH.get_or_init(Instant::now);
    }
    ENABLED.store(on, Ordering::SeqCst);
}

/// The process trace epoch (pinned on first use).
fn epoch() -> Instant {
    *EPOCH.get_or_init(Instant::now)
}

/// Nanoseconds since the trace epoch.
#[inline]
pub fn now_ns() -> u64 {
    epoch().elapsed().as_nanos() as u64
}

fn my_lane() -> Arc<LaneBuf> {
    MY_LANE.with(|cell| {
        cell.get_or_init(|| {
            let seq = LANE_SEQ.fetch_add(1, Ordering::Relaxed);
            let name = std::thread::current()
                .name()
                .map(str::to_string)
                .unwrap_or_else(|| format!("lane-{seq}"));
            let lane = Arc::new(LaneBuf::new(name));
            LANES.lock().unwrap().push(Arc::clone(&lane));
            lane
        })
        .clone()
    })
}

/// Records a completed span with explicit timestamps (from [`now_ns`]).
/// No-op when recording is disabled.
pub fn record_span(cat: &'static str, name: String, start_ns: u64, end_ns: u64) {
    if !enabled() {
        return;
    }
    my_lane().push(SpanRecord {
        name,
        cat,
        start_ns,
        end_ns,
    });
}

/// Times `f` as a span named by `name()` (called only when recording is
/// enabled, so a disabled run never allocates the label).
pub fn span<R>(cat: &'static str, name: impl FnOnce() -> String, f: impl FnOnce() -> R) -> R {
    if !enabled() {
        return f();
    }
    let start = now_ns();
    let r = f();
    record_span(cat, name(), start, now_ns());
    r
}

/// Copies every lane's published spans and drop counts.
pub fn snapshot() -> TraceSnapshot {
    let lanes = LANES.lock().unwrap();
    TraceSnapshot {
        lanes: lanes
            .iter()
            .map(|lane| {
                let mut spans = Vec::new();
                lane.snapshot_into(&mut spans);
                LaneSnapshot {
                    name: lane.name.clone(),
                    spans,
                    dropped: lane.dropped.load(Ordering::Relaxed),
                }
            })
            .collect(),
    }
}

/// Clears every lane (lengths and drop counts back to zero).
///
/// ## Quiescence contract
///
/// `reset` is only safe to call while the recorder is **quiescent**: no
/// thread is inside [`record_span`]/[`span`]. The supported way to get
/// there is to disable recording with [`set_enabled`]`(false)` and join
/// (or otherwise quiesce) every thread that was recording — which is
/// exactly what [`test_guard`] does; obs-touching tests should hold one
/// instead of rolling their own mutex. A call during concurrent
/// recording is memory-safe (slots are overwritten before being
/// re-published) but scrambles the trace: the recorder restarts its lane
/// from slot zero mid-run. Labels already in the cleared slots are
/// leaked rather than dropped (dropping them from a foreign thread could
/// race a misbehaving recorder); `reset` is a test/bench helper, not a
/// hot-path API.
pub fn reset() {
    let lanes = LANES.lock().unwrap();
    for lane in lanes.iter() {
        lane.len.store(0, Ordering::Release);
        lane.dropped.store(0, Ordering::Relaxed);
    }
}

/// Serializes tests (and benches) that touch the process-global
/// recorder. Held by [`test_guard`].
static TEST_MUTEX: Mutex<()> = Mutex::new(());

/// Exclusive, clean-slate access to the global recorder for a test.
///
/// Dropped guards re-disable and re-clear, so the next holder always
/// starts from zero. Returned by [`test_guard`].
#[derive(Debug)]
pub struct TestGuard {
    _lock: std::sync::MutexGuard<'static, ()>,
}

impl Drop for TestGuard {
    fn drop(&mut self) {
        // Runs before `_lock` releases: leave the recorder disabled and
        // empty for whoever serializes in next.
        set_enabled(false);
        reset();
    }
}

/// Takes the process-wide recorder lock and resets to a quiescent,
/// disabled state — the one sanctioned way for tests to share the global
/// recorder.
///
/// The guard satisfies [`reset`]'s quiescence contract on both edges:
/// entry happens-after the previous holder's drop (which disabled
/// recording and cleared the lanes), and the guard's own drop disables
/// and clears again before releasing the lock. Tests that want recording
/// call [`set_enabled`]`(true)` themselves after taking the guard, and
/// must join any recording threads before dropping it. A panicked holder
/// poisons nothing: the poison is shrugged off, and the drop-side reset
/// restores the clean slate.
pub fn test_guard() -> TestGuard {
    let lock = TEST_MUTEX
        .lock()
        .unwrap_or_else(std::sync::PoisonError::into_inner);
    set_enabled(false);
    reset();
    TestGuard { _lock: lock }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_recording_is_a_no_op() {
        let _g = test_guard();
        span("test", || "never".to_string(), || ());
        record_span("test", "never".to_string(), 0, 1);
        assert_eq!(snapshot().span_count(), 0);
    }

    #[test]
    fn spans_are_recorded_in_order_with_monotone_times() {
        let _g = test_guard();
        set_enabled(true);
        for i in 0..5 {
            span("test", || format!("s{i}"), || std::hint::black_box(i));
        }
        set_enabled(false);
        let snap = snapshot();
        let lane = snap
            .lanes
            .iter()
            .find(|l| l.spans.iter().any(|s| s.name == "s0"))
            .expect("recording lane");
        let names: Vec<&str> = lane
            .spans
            .iter()
            .filter(|s| s.cat == "test")
            .map(|s| s.name.as_str())
            .collect();
        assert_eq!(names, ["s0", "s1", "s2", "s3", "s4"]);
        for s in &lane.spans {
            assert!(s.end_ns >= s.start_ns);
        }
    }

    #[test]
    fn full_lanes_drop_and_count() {
        let _g = test_guard();
        set_enabled(true);
        let over = 100u64;
        std::thread::Builder::new()
            .name("obs-drop-test".into())
            .spawn(move || {
                for i in 0..(LANE_CAPACITY as u64 + over) {
                    record_span("test", String::new(), i, i + 1);
                }
            })
            .unwrap()
            .join()
            .unwrap();
        set_enabled(false);
        let snap = snapshot();
        let lane = snap
            .lanes
            .iter()
            .find(|l| l.name == "obs-drop-test")
            .expect("drop-test lane");
        assert_eq!(lane.spans.len(), LANE_CAPACITY);
        assert_eq!(lane.dropped, over);
    }

    #[test]
    fn concurrent_recording_lands_on_separate_lanes() {
        let _g = test_guard();
        set_enabled(true);
        std::thread::scope(|s| {
            for t in 0..3 {
                s.spawn(move || {
                    for i in 0..50 {
                        span("conc", || format!("t{t}-{i}"), || std::hint::black_box(i));
                    }
                });
            }
        });
        set_enabled(false);
        let snap = snapshot();
        let conc: usize = snap
            .lanes
            .iter()
            .map(|l| l.spans.iter().filter(|s| s.cat == "conc").count())
            .sum();
        assert_eq!(conc, 150);
        assert_eq!(snap.dropped(), 0);
    }

    #[test]
    fn test_guard_leaves_a_clean_disabled_recorder() {
        {
            let _g = test_guard();
            set_enabled(true);
            record_span("test", "leftover".to_string(), 0, 1);
            assert!(snapshot().span_count() > 0);
        }
        let _g = test_guard();
        assert!(!enabled(), "previous guard left recording on");
        assert_eq!(snapshot().span_count(), 0, "previous guard left spans");
    }
}
