//! # adagp-obs
//!
//! Workspace-wide observability for the ADA-GP reproduction: one crate
//! that spans the stack the way nothing did before it — the runtime
//! pool's task execution, `core`'s pipelined trainer stages, the sweep
//! runner's per-cell evaluations and `adagp-serve`'s request lifecycle
//! all record into the same primitives, and two renderers get the data
//! out:
//!
//! * the flat `name value` text form the serve crate's `/metrics`
//!   endpoint has always spoken, extended with `_bucket`/`_sum`/`_count`
//!   histogram lines ([`metric`], [`registry`]);
//! * a wall-clock Chrome-trace JSON writer ([`trace`]) shape-compatible
//!   with `adagp-sim`'s cycle-domain exporter, so a **measured** training
//!   run and its **simulated** timeline load side-by-side in Perfetto;
//! * a span-tree profiler ([`profile`]) folding the same buffers into
//!   caller→callee trees with self/total micros — rendered as a flat
//!   profile, collapsed stacks (flamegraph-compatible, `ADAGP_PROFILE`)
//!   and the JSON tree `adagp-serve`'s `GET /profile` serves;
//! * the bench-snapshot registry ([`bench`]) — the one schema every
//!   committed `BENCH_*.json` perf-trajectory point uses, consumed by
//!   the `perf_gate` regression CLI in `adagp-bench`;
//! * a critical-path and stall-attribution analyzer ([`crit`]) that
//!   walks simulated DAGs along zero-slack edges and folds measured
//!   span lanes into busy/queue-wait/idle segments, emitting one
//!   `adagp-critpath-v1` report shape for both timeline sources.
//!
//! ## Cost model
//!
//! Disabled (the default), every instrumented site pays one relaxed
//! atomic load and a branch. Enabled (`ADAGP_TRACE=<path>`, or
//! [`set_enabled`] in tests), spans go to per-thread bounded lock-free
//! buffers that **drop and count** on overflow ([`recorder`]); metrics
//! are always plain atomics. Observability never perturbs results —
//! `adagp-bench`'s `obs_noperturb` battery proves kernel and sweep
//! outputs bit-identical with tracing on vs off across thread counts.

pub mod bench;
pub mod crit;
pub mod metric;
pub mod profile;
pub mod recorder;
pub mod registry;
pub mod trace;

pub use crit::{
    analyze_dag, analyze_snapshot, measured_gap_threshold_ns, relabel_lanes_by_cat,
    validate_critpath, BlameEntry, ChainSegment, CritReport, CritStats, CritTask, MeasuredLane,
    QueueWait, Via, CRITPATH_SCHEMA,
};
pub use metric::{bucket_index, bucket_upper, Counter, Gauge, Histogram};
pub use profile::{
    build_profile, profile_guard_from_env, validate_profile, FlatLine, LaneProfile, Profile,
    ProfileGuard, ProfileNode, ProfileStats, PROFILE_ENV, PROFILE_SCHEMA,
};
pub use recorder::{
    enabled, now_ns, record_span, reset, set_enabled, snapshot, span, test_guard, LaneSnapshot,
    SpanRecord, TestGuard, TraceSnapshot,
};
pub use registry::{registry, Registry};
pub use trace::{
    chrome_trace, trace_guard_from_env, validate_chrome_trace, write_trace, TraceEvents,
    TraceGuard, TraceStats, TRACE_ENV,
};
