//! Wall-clock Chrome-trace export: the *measured* counterpart of
//! `adagp-sim`'s cycle-domain exporter.
//!
//! The emitted JSON uses the same Trace Event Format object form the sim
//! writes — a `traceEvents` array of complete (`"ph": "X"`) events plus
//! `thread_name` metadata, one lane per recording thread — so a measured
//! training run and its simulated timeline load side-by-side in
//! <https://ui.perfetto.dev> (open both files, or `cat` their
//! `traceEvents` together). Timestamps are microseconds of wall clock
//! (fractional, nanosecond-derived); the sim's are microseconds reading
//! as cycles. Lane 0 of pid 2 carries the measured run; the sim uses
//! pid 1, so the two never collide in a merged view.
//!
//! ## Env gating
//!
//! `ADAGP_TRACE=<path>` is the one switch users touch: call
//! [`trace_guard_from_env`] early in `main` and the returned guard
//! enables recording, then dumps the trace to `<path>` when dropped
//! (i.e. at exit). Unset, recording stays disabled and costs a branch
//! per instrumented site.

use crate::recorder::{self, TraceSnapshot};
use serde::Value;
use std::path::{Path, PathBuf};

/// Environment variable naming the Chrome-trace dump path.
pub const TRACE_ENV: &str = "ADAGP_TRACE";

/// Process id used for measured (wall-clock) lanes — distinct from the
/// sim exporter's pid 1 so merged traces keep separate process groups.
const PID: u64 = 2;

/// The one low-level Trace Event Format writer in the workspace.
///
/// Both Chrome-trace exporters assemble their files through this builder
/// — `adagp-sim`'s cycle-domain writer (pid 1, integer timestamps) and
/// this crate's wall-clock writer (pid 2, fractional microseconds) — so
/// the event field layout the two families share cannot drift apart.
/// `ts`/`dur` are taken as pre-encoded [`Value`]s precisely because the
/// two domains encode them differently; everything else is fixed here.
#[derive(Debug, Default)]
pub struct TraceEvents {
    events: Vec<Value>,
}

impl TraceEvents {
    /// An empty event list.
    pub fn new() -> Self {
        Self::default()
    }

    /// `process_name` metadata: labels a pid's lane group in the viewer.
    pub fn process_name(&mut self, pid: u64, name: &str) {
        self.events.push(Value::object(vec![
            ("name", Value::String("process_name".into())),
            ("ph", Value::String("M".into())),
            ("pid", Value::UInt(pid)),
            (
                "args",
                Value::object(vec![("name", Value::String(name.to_string()))]),
            ),
        ]));
    }

    /// `thread_name` metadata: labels one lane.
    pub fn thread_name(&mut self, pid: u64, tid: u64, name: &str) {
        self.events.push(Value::object(vec![
            ("name", Value::String("thread_name".into())),
            ("ph", Value::String("M".into())),
            ("pid", Value::UInt(pid)),
            ("tid", Value::UInt(tid)),
            (
                "args",
                Value::object(vec![("name", Value::String(name.to_string()))]),
            ),
        ]));
    }

    /// A complete (`"ph": "X"`) span event. `args` appends an argument
    /// object when given (the sim writer attaches task/layer ids).
    #[allow(clippy::too_many_arguments)]
    pub fn complete(
        &mut self,
        pid: u64,
        tid: u64,
        name: &str,
        cat: &str,
        ts: Value,
        dur: Value,
        args: Option<Value>,
    ) {
        let mut fields = vec![
            ("name", Value::String(name.to_string())),
            ("cat", Value::String(cat.to_string())),
            ("ph", Value::String("X".into())),
            ("ts", ts),
            ("dur", dur),
            ("pid", Value::UInt(pid)),
            ("tid", Value::UInt(tid)),
        ];
        if let Some(args) = args {
            fields.push(("args", args));
        }
        self.events.push(Value::object(fields));
    }

    /// A counter (`"ph": "C"`) event plotting `args`'s numeric fields.
    pub fn counter(&mut self, pid: u64, name: &str, ts: Value, args: Value) {
        self.events.push(Value::object(vec![
            ("name", Value::String(name.to_string())),
            ("ph", Value::String("C".into())),
            ("ts", ts),
            ("pid", Value::UInt(pid)),
            ("args", args),
        ]));
    }

    /// Wraps the events into the root object (`traceEvents`,
    /// `displayTimeUnit`, then any writer-specific tail fields) and
    /// renders pretty JSON with a trailing newline.
    pub fn finish(self, display_time_unit: &str, extra: Vec<(&str, Value)>) -> String {
        let mut fields = vec![
            ("traceEvents", Value::Array(self.events)),
            (
                "displayTimeUnit",
                Value::String(display_time_unit.to_string()),
            ),
        ];
        fields.extend(extra);
        let mut out = serde::json::to_string_pretty(&Value::object(fields));
        out.push('\n');
        out
    }
}

/// Microseconds (fractional) from a nanosecond timestamp.
fn us(ns: u64) -> Value {
    Value::Float(ns as f64 / 1000.0)
}

/// Renders a recorder snapshot as a Chrome-trace JSON string.
pub fn chrome_trace(snap: &TraceSnapshot, title: &str) -> String {
    let mut t = TraceEvents::new();
    t.process_name(PID, title);
    for (tid, lane) in snap.lanes.iter().enumerate() {
        t.thread_name(PID, tid as u64, &lane.name);
        for span in &lane.spans {
            t.complete(
                PID,
                tid as u64,
                &span.name,
                span.cat,
                us(span.start_ns),
                us(span.end_ns.saturating_sub(span.start_ns)),
                None,
            );
        }
    }
    t.finish("ms", vec![("droppedSpans", Value::UInt(snap.dropped()))])
}

/// Snapshots the recorder and writes the Chrome trace to `path`.
///
/// # Errors
///
/// Returns any I/O error from creating or writing the file.
pub fn write_trace(path: &Path, title: &str) -> std::io::Result<()> {
    std::fs::write(path, chrome_trace(&recorder::snapshot(), title))
}

/// Enables recording and dumps the trace on drop — the `ADAGP_TRACE`
/// contract. Returned by [`trace_guard_from_env`]; hold it for the
/// lifetime of `main`.
#[derive(Debug)]
pub struct TraceGuard {
    path: PathBuf,
    title: String,
}

impl Drop for TraceGuard {
    fn drop(&mut self) {
        match write_trace(&self.path, &self.title) {
            Ok(()) => eprintln!("trace written to {}", self.path.display()),
            Err(e) => eprintln!("trace dump to {} failed: {e}", self.path.display()),
        }
    }
}

/// If `ADAGP_TRACE=<path>` is set, enables span recording and returns a
/// guard that dumps the Chrome trace to `<path>` when dropped. `title`
/// labels the process lane group in the viewer.
pub fn trace_guard_from_env(title: &str) -> Option<TraceGuard> {
    let path = std::env::var_os(TRACE_ENV)?;
    if path.is_empty() {
        return None;
    }
    recorder::set_enabled(true);
    Some(TraceGuard {
        path: PathBuf::from(path),
        title: title.to_string(),
    })
}

/// Shape statistics [`validate_chrome_trace`] extracts from a trace.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TraceStats {
    /// Complete (`"ph": "X"`) span events.
    pub spans: usize,
    /// Metadata (`"ph": "M"`) events.
    pub metadata: usize,
    /// Distinct `(pid, tid)` lanes carrying spans.
    pub lanes: usize,
}

/// Parses `text` as Chrome-trace JSON (with the workspace's own
/// `serde::json` reader — the same one the sim trace tests use) and
/// checks the structural contract: a `traceEvents` array whose `X`
/// events carry numeric `ts`/`dur` and whose siblings on one lane never
/// partially overlap (each pair is either disjoint or nested).
///
/// # Errors
///
/// Returns a description of the first malformed or overlapping event.
pub fn validate_chrome_trace(text: &str) -> Result<TraceStats, String> {
    let root = serde::json::parse_value(text).map_err(|e| format!("not JSON: {e}"))?;
    let events = root
        .field("traceEvents")
        .map_err(|e| format!("no traceEvents: {e}"))?;
    let Value::Array(events) = events else {
        return Err(format!("traceEvents is {}, not array", events.kind()));
    };
    let mut spans = 0usize;
    let mut metadata = 0usize;
    // (pid, tid) -> [(start, end)]
    let mut lanes: Vec<((u64, u64), Vec<(f64, f64)>)> = Vec::new();
    for ev in events {
        let ph = ev
            .field("ph")
            .ok()
            .and_then(Value::as_str)
            .ok_or("event without ph")?;
        match ph {
            "M" => metadata += 1,
            "X" => {
                spans += 1;
                let num = |k: &str| {
                    ev.field(k)
                        .ok()
                        .and_then(Value::as_f64)
                        .ok_or_else(|| format!("X event without numeric {k}"))
                };
                let (ts, dur) = (num("ts")?, num("dur")?);
                if !(ts.is_finite() && dur.is_finite() && ts >= 0.0 && dur >= 0.0) {
                    return Err(format!("bad span times ts={ts} dur={dur}"));
                }
                let pid = ev.field("pid").ok().and_then(Value::as_u64).unwrap_or(0);
                let tid = ev.field("tid").ok().and_then(Value::as_u64).unwrap_or(0);
                let lane = match lanes.iter_mut().find(|(k, _)| *k == (pid, tid)) {
                    Some((_, v)) => v,
                    None => {
                        lanes.push(((pid, tid), Vec::new()));
                        &mut lanes.last_mut().unwrap().1
                    }
                };
                lane.push((ts, ts + dur));
            }
            // Counter events etc. are fine; they have no lane extent.
            _ => {}
        }
    }
    for ((pid, tid), mut intervals) in lanes.clone() {
        // Start ascending, end descending: a parent sharing its child's
        // start time is processed first, so the child nests.
        intervals.sort_by(|a, b| {
            a.0.partial_cmp(&b.0)
                .unwrap()
                .then(b.1.partial_cmp(&a.1).unwrap())
        });
        // Well-formed nesting: sweeping in start order, every span must
        // either start after all open spans closed (disjoint sibling) or
        // close within the innermost still-open span (nested child).
        let mut open: Vec<f64> = Vec::new(); // stack of end times
        for (start, end) in intervals {
            while let Some(&top) = open.last() {
                if top <= start {
                    open.pop();
                } else {
                    break;
                }
            }
            if let Some(&top) = open.last() {
                if end > top {
                    return Err(format!(
                        "lane pid={pid} tid={tid}: span [{start}, {end}] partially overlaps \
                         an open span ending at {top}"
                    ));
                }
            }
            open.push(end);
        }
    }
    Ok(TraceStats {
        spans,
        metadata,
        lanes: lanes.len(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::recorder::{LaneSnapshot, SpanRecord};

    fn snap_of(spans: Vec<SpanRecord>) -> TraceSnapshot {
        TraceSnapshot {
            lanes: vec![LaneSnapshot {
                name: "main".into(),
                spans,
                dropped: 0,
            }],
        }
    }

    fn rec(name: &str, start_ns: u64, end_ns: u64) -> SpanRecord {
        SpanRecord {
            name: name.into(),
            cat: "test",
            start_ns,
            end_ns,
        }
    }

    #[test]
    fn trace_round_trips_through_the_validator() {
        let snap = snap_of(vec![
            rec("outer", 0, 10_000),
            rec("inner", 2_000, 5_000),
            rec("later", 12_000, 15_000),
        ]);
        let text = chrome_trace(&snap, "unit");
        let stats = validate_chrome_trace(&text).expect("valid trace");
        assert_eq!(stats.spans, 3);
        assert_eq!(stats.metadata, 2); // process_name + one thread_name
        assert_eq!(stats.lanes, 1);
        assert!(text.contains("\"ph\": \"X\""));
        assert!(text.contains("thread_name"));
    }

    #[test]
    fn partial_overlap_on_one_lane_is_rejected() {
        let snap = snap_of(vec![rec("a", 0, 10_000), rec("b", 5_000, 15_000)]);
        let text = chrome_trace(&snap, "unit");
        let err = validate_chrome_trace(&text).expect_err("overlap must fail");
        assert!(err.contains("partially overlaps"), "{err}");
    }

    #[test]
    fn sim_traces_validate_too() {
        // The validator accepts the sim exporter's shape (UInt ts/dur,
        // counter events) — the two trace families share one checker.
        let text = r#"{
            "traceEvents": [
                {"name": "process_name", "ph": "M", "pid": 1},
                {"name": "fwd l0", "ph": "X", "ts": 0, "dur": 10, "pid": 1, "tid": 0},
                {"name": "buffer", "ph": "C", "ts": 3, "pid": 1}
            ]
        }"#;
        let stats = validate_chrome_trace(text).expect("sim shape validates");
        assert_eq!(stats.spans, 1);
        assert_eq!(stats.lanes, 1);
    }

    #[test]
    fn garbage_is_rejected_with_a_reason() {
        assert!(validate_chrome_trace("not json").is_err());
        assert!(validate_chrome_trace("{}").is_err());
        assert!(validate_chrome_trace(r#"{"traceEvents": 3}"#).is_err());
    }
}
