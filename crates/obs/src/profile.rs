//! Span-tree profile aggregation: the layer that *consumes* the
//! recorder's raw span buffers.
//!
//! [`build_profile`] folds a [`TraceSnapshot`] into one caller→callee
//! tree per lane: spans on a lane nest by interval containment (the
//! recorder's per-thread buffers are properly nested by construction —
//! the same contract [`crate::trace::validate_chrome_trace`] checks), so
//! a single sorted sweep with a stack recovers the call structure, and
//! same-named calls under the same parent merge into one node carrying a
//! call count, **total** time (span extent) and **self** time (extent
//! minus children).
//!
//! Three renderers get the tree out:
//!
//! * [`Profile::render_flat`] — the sorted flat profile (per span name:
//!   calls, total µs, self µs; self-descending, the gprof ordering);
//! * [`Profile::collapsed`] — the collapsed-stack text form
//!   (`lane;frame;frame value` lines, one per node, value = self µs) that
//!   `flamegraph.pl`, speedscope and Perfetto's "import collapsed" all
//!   eat directly;
//! * [`Profile::to_json`] — a schema-tagged JSON tree (via the vendored
//!   `serde`) served live by `adagp-serve`'s `GET /profile` endpoint.
//!
//! [`validate_profile`] machine-checks either machine-readable form
//! (JSON tree or collapsed stacks) and enforces the structural
//! invariants downstream tooling relies on: every node has `calls ≥ 1`,
//! `self_us ≤ total_us`, and its children's totals sum to at most its
//! own — `obs_check profile` and the CI serve scrape run exactly this.
//!
//! ## Units and rounding
//!
//! Aggregation is exact in nanoseconds; the renderers floor to
//! microseconds per node. Flooring preserves both invariants
//! (`Σ floor(xᵢ) ≤ floor(Σ xᵢ)`), so a rendered tree always validates.
//!
//! ## Env gating
//!
//! `ADAGP_PROFILE=<path>` mirrors `ADAGP_TRACE`: [`profile_guard_from_env`]
//! enables span recording and writes the collapsed-stack dump to
//! `<path>` when the guard drops (i.e. at exit). Both guards can be held
//! at once — one run then leaves a timeline *and* a flamegraph behind.

use crate::recorder::{self, TraceSnapshot};
use serde::Value;
use std::path::{Path, PathBuf};

/// Environment variable naming the collapsed-stack dump path.
pub const PROFILE_ENV: &str = "ADAGP_PROFILE";

/// Schema tag on the JSON tree form.
pub const PROFILE_SCHEMA: &str = "adagp-profile-v1";

/// One merged call-tree node: every span named `name` recorded under the
/// same caller path.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ProfileNode {
    /// Span display name.
    pub name: String,
    /// Spans merged into this node.
    pub calls: u64,
    /// Summed span extents, nanoseconds (children included).
    pub total_ns: u64,
    /// Callees, in first-call order.
    pub children: Vec<ProfileNode>,
}

impl ProfileNode {
    /// Summed totals of the direct children, nanoseconds.
    pub fn child_total_ns(&self) -> u64 {
        self.children.iter().map(|c| c.total_ns).sum()
    }

    /// Time spent in this node itself (total minus children),
    /// nanoseconds. The sweep clamps children into their parent's
    /// extent, so this never underflows on well-formed input; the
    /// saturation is belt-and-braces.
    pub fn self_ns(&self) -> u64 {
        self.total_ns.saturating_sub(self.child_total_ns())
    }

    /// Total time, floored to microseconds.
    pub fn total_us(&self) -> u64 {
        self.total_ns / 1_000
    }

    /// Self time, floored to microseconds.
    pub fn self_us(&self) -> u64 {
        self.self_ns() / 1_000
    }

    /// Nodes in this subtree (this one included).
    pub fn node_count(&self) -> usize {
        1 + self
            .children
            .iter()
            .map(ProfileNode::node_count)
            .sum::<usize>()
    }
}

/// One lane's (thread's) call tree plus its rollup numbers.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LaneProfile {
    /// Lane display name (the recording thread's name).
    pub name: String,
    /// Spans this lane contributed.
    pub spans: u64,
    /// Spans the lane dropped on overflow.
    pub dropped: u64,
    /// Top-level call-tree nodes.
    pub roots: Vec<ProfileNode>,
}

impl LaneProfile {
    /// The lane's busy time: summed root totals, nanoseconds.
    pub fn total_ns(&self) -> u64 {
        self.roots.iter().map(|r| r.total_ns).sum()
    }

    /// Nodes in the lane's tree.
    pub fn node_count(&self) -> usize {
        self.roots.iter().map(ProfileNode::node_count).sum()
    }
}

/// A full aggregated profile: one call tree per lane.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct Profile {
    /// Per-lane trees, in lane-registration order (empty lanes omitted).
    pub lanes: Vec<LaneProfile>,
}

/// One row of the flat (name-aggregated) profile.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FlatLine {
    /// Span name (aggregated across lanes and caller paths).
    pub name: String,
    /// Calls across every position the name appears in.
    pub calls: u64,
    /// Summed totals, nanoseconds. A name nested under itself counts
    /// its extent once per level — the standard cumulative-time caveat
    /// for recursive frames.
    pub total_ns: u64,
    /// Summed self times, nanoseconds (never double-counted).
    pub self_ns: u64,
}

// Sweep bookkeeping: one open tree position while scanning a lane.
struct OpenFrame {
    node: usize,
    /// Clamped end of this instance (children may not outlive it).
    end_ns: u64,
    /// End of the last child admitted under this instance (children may
    /// not overlap each other).
    cursor_ns: u64,
}

// Arena node under construction (indices avoid parent borrows).
struct BuildNode {
    name: String,
    calls: u64,
    total_ns: u64,
    children: Vec<usize>,
}

fn freeze(arena: &[BuildNode], idx: usize) -> ProfileNode {
    let n = &arena[idx];
    ProfileNode {
        name: n.name.clone(),
        calls: n.calls,
        total_ns: n.total_ns,
        children: n.children.iter().map(|&c| freeze(arena, c)).collect(),
    }
}

/// Folds a recorder snapshot into per-lane caller→callee trees.
///
/// Spans are sorted by (start ascending, end descending) and swept with
/// a stack, so interval containment becomes parent→child structure and
/// same-named spans under one parent merge. Ill-formed input (partial
/// overlaps, which the recorder never produces on one lane) degrades
/// gracefully: an overlapping span is clamped into the time its parent
/// has left, keeping every invariant the validator checks.
pub fn build_profile(snap: &TraceSnapshot) -> Profile {
    let mut lanes = Vec::new();
    for lane in &snap.lanes {
        if lane.spans.is_empty() && lane.dropped == 0 {
            continue;
        }
        // Index spans and sort: start ascending, end descending, record
        // order as the tiebreak (a parent published after its child —
        // completion order — still sweeps first at equal extents).
        let mut order: Vec<usize> = (0..lane.spans.len()).collect();
        order.sort_by(|&a, &b| {
            let (sa, sb) = (&lane.spans[a], &lane.spans[b]);
            sa.start_ns
                .cmp(&sb.start_ns)
                .then(sb.end_ns.cmp(&sa.end_ns))
                .then(a.cmp(&b))
        });

        let mut arena: Vec<BuildNode> = Vec::new();
        let mut roots: Vec<usize> = Vec::new();
        let mut stack: Vec<OpenFrame> = Vec::new();
        // The virtual lane root: unbounded extent, its own child cursor.
        let mut root_cursor = 0u64;
        for &i in &order {
            let span = &lane.spans[i];
            while stack.last().is_some_and(|top| top.end_ns <= span.start_ns) {
                stack.pop();
            }
            let (parent_end, parent_cursor) = match stack.last() {
                Some(top) => (top.end_ns, top.cursor_ns),
                None => (u64::MAX, root_cursor),
            };
            // Clamp into the parent's remaining extent: a no-op for
            // well-nested input, a safe degradation otherwise.
            let start = span.start_ns.max(parent_cursor);
            let end = span.end_ns.min(parent_end).max(start);
            let dur = end - start;
            match stack.last_mut() {
                Some(top) => top.cursor_ns = top.cursor_ns.max(end),
                None => root_cursor = root_cursor.max(end),
            }
            let siblings = match stack.last() {
                Some(top) => &arena[top.node].children,
                None => &roots,
            };
            let node = match siblings
                .iter()
                .copied()
                .find(|&c| arena[c].name == span.name)
            {
                Some(existing) => {
                    arena[existing].calls += 1;
                    arena[existing].total_ns += dur;
                    existing
                }
                None => {
                    arena.push(BuildNode {
                        name: span.name.clone(),
                        calls: 1,
                        total_ns: dur,
                        children: Vec::new(),
                    });
                    let fresh = arena.len() - 1;
                    match stack.last() {
                        Some(top) => arena[top.node].children.push(fresh),
                        None => roots.push(fresh),
                    }
                    fresh
                }
            };
            stack.push(OpenFrame {
                node,
                end_ns: end,
                cursor_ns: start,
            });
        }
        lanes.push(LaneProfile {
            name: lane.name.clone(),
            spans: lane.spans.len() as u64,
            dropped: lane.dropped,
            roots: roots.iter().map(|&r| freeze(&arena, r)).collect(),
        });
    }
    Profile { lanes }
}

impl Profile {
    /// Spans across every lane.
    pub fn span_count(&self) -> u64 {
        self.lanes.iter().map(|l| l.spans).sum()
    }

    /// Tree nodes across every lane.
    pub fn node_count(&self) -> usize {
        self.lanes.iter().map(LaneProfile::node_count).sum()
    }

    /// Dropped spans across every lane.
    pub fn dropped(&self) -> u64 {
        self.lanes.iter().map(|l| l.dropped).sum()
    }

    /// The flat profile: per span name (aggregated across lanes and
    /// caller paths), calls / total / self, sorted self-descending with
    /// total then name as tiebreaks.
    pub fn flat(&self) -> Vec<FlatLine> {
        let mut rows: Vec<FlatLine> = Vec::new();
        fn add(rows: &mut Vec<FlatLine>, node: &ProfileNode) {
            match rows.iter_mut().find(|r| r.name == node.name) {
                Some(row) => {
                    row.calls += node.calls;
                    row.total_ns += node.total_ns;
                    row.self_ns += node.self_ns();
                }
                None => rows.push(FlatLine {
                    name: node.name.clone(),
                    calls: node.calls,
                    total_ns: node.total_ns,
                    self_ns: node.self_ns(),
                }),
            }
            for c in &node.children {
                add(rows, c);
            }
        }
        for lane in &self.lanes {
            for root in &lane.roots {
                add(&mut rows, root);
            }
        }
        rows.sort_by(|a, b| {
            b.self_ns
                .cmp(&a.self_ns)
                .then(b.total_ns.cmp(&a.total_ns))
                .then(a.name.cmp(&b.name))
        });
        rows
    }

    /// Renders the flat profile as an aligned text table.
    pub fn render_flat(&self) -> String {
        let rows = self.flat();
        let name_w = rows
            .iter()
            .map(|r| r.name.len())
            .chain(["name".len()])
            .max()
            .unwrap_or(4);
        let mut out = format!(
            "flat profile: {} spans, {} nodes, {} lanes{}\n{:<name_w$}  {:>8}  {:>12}  {:>12}\n",
            self.span_count(),
            self.node_count(),
            self.lanes.len(),
            if self.dropped() > 0 {
                format!(" ({} dropped)", self.dropped())
            } else {
                String::new()
            },
            "name",
            "calls",
            "total_us",
            "self_us",
        );
        for r in &rows {
            out.push_str(&format!(
                "{:<name_w$}  {:>8}  {:>12}  {:>12}\n",
                r.name,
                r.calls,
                r.total_ns / 1_000,
                r.self_ns / 1_000,
            ));
        }
        out
    }

    /// The collapsed-stack text form: one `lane;frame;…;frame value`
    /// line per tree node, value = the node's **self** time in floored
    /// microseconds. Frames are sanitized (spaces → `_`, `;` → `:`) so
    /// the single-space stack/value split every flamegraph tool performs
    /// stays unambiguous.
    pub fn collapsed(&self) -> String {
        fn frame(name: &str) -> String {
            name.replace(' ', "_").replace(';', ":")
        }
        fn walk(out: &mut String, prefix: &str, node: &ProfileNode) {
            let path = format!("{prefix};{}", frame(&node.name));
            out.push_str(&format!("{path} {}\n", node.self_us()));
            for c in &node.children {
                walk(out, &path, c);
            }
        }
        let mut out = String::new();
        for lane in &self.lanes {
            let lane_frame = frame(&lane.name);
            for root in &lane.roots {
                walk(&mut out, &lane_frame, root);
            }
        }
        out
    }

    /// The JSON tree form (`adagp-profile-v1`): what `GET /profile`
    /// serves and [`validate_profile`] checks.
    pub fn to_json(&self, title: &str) -> String {
        fn node_value(n: &ProfileNode) -> Value {
            Value::object(vec![
                ("name", Value::String(n.name.clone())),
                ("calls", Value::UInt(n.calls)),
                ("total_us", Value::UInt(n.total_us())),
                ("self_us", Value::UInt(n.self_us())),
                (
                    "children",
                    Value::Array(n.children.iter().map(node_value).collect()),
                ),
            ])
        }
        let lanes: Vec<Value> = self
            .lanes
            .iter()
            .map(|l| {
                Value::object(vec![
                    ("name", Value::String(l.name.clone())),
                    ("spans", Value::UInt(l.spans)),
                    ("dropped", Value::UInt(l.dropped)),
                    ("total_us", Value::UInt(l.total_ns() / 1_000)),
                    (
                        "children",
                        Value::Array(l.roots.iter().map(node_value).collect()),
                    ),
                ])
            })
            .collect();
        let root = Value::object(vec![
            ("schema", Value::String(PROFILE_SCHEMA.to_string())),
            ("title", Value::String(title.to_string())),
            ("spans", Value::UInt(self.span_count())),
            ("nodes", Value::UInt(self.node_count() as u64)),
            ("dropped", Value::UInt(self.dropped())),
            ("lanes", Value::Array(lanes)),
        ]);
        let mut out = serde::json::to_string_pretty(&root);
        out.push('\n');
        out
    }
}

/// Shape statistics [`validate_profile`] extracts from a dump.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ProfileStats {
    /// Lanes carrying at least one node.
    pub lanes: usize,
    /// Tree nodes (JSON form) or stack lines (collapsed form).
    pub nodes: usize,
    /// Summed root totals (JSON form) or summed line values (collapsed
    /// form), microseconds.
    pub total_us: u64,
}

/// Validates either machine-readable profile form, auto-detected: text
/// starting with `{` is checked as the `adagp-profile-v1` JSON tree
/// (every node: `calls ≥ 1`, `self_us ≤ total_us`, children's totals
/// sum to at most the parent's), anything else as collapsed stacks
/// (every line: a `;`-joined stack of non-empty frames, one space, an
/// unsigned integer value).
///
/// Emptiness is legal here — a disabled recorder yields a valid empty
/// profile. Callers that need substance (the CI scrape, the load test)
/// additionally require `nodes > 0`.
///
/// # Errors
///
/// Returns a description of the first malformed or inconsistent entry.
pub fn validate_profile(text: &str) -> Result<ProfileStats, String> {
    if text.trim_start().starts_with('{') {
        validate_profile_json(text)
    } else {
        validate_collapsed(text)
    }
}

fn validate_profile_json(text: &str) -> Result<ProfileStats, String> {
    let root = serde::json::parse_value(text).map_err(|e| format!("not JSON: {e}"))?;
    let schema = root
        .field("schema")
        .ok()
        .and_then(Value::as_str)
        .ok_or("profile without a schema tag")?;
    if schema != PROFILE_SCHEMA {
        return Err(format!("schema `{schema}` is not `{PROFILE_SCHEMA}`"));
    }
    let Value::Array(lanes) = root.field("lanes").map_err(|e| e.message().to_string())? else {
        return Err("`lanes` is not an array".to_string());
    };

    fn check_node(v: &Value, path: &str) -> Result<(usize, u64), String> {
        let name = v
            .field("name")
            .ok()
            .and_then(Value::as_str)
            .ok_or_else(|| format!("{path}: node without a name"))?;
        let path = format!("{path};{name}");
        let num = |k: &str| {
            v.field(k)
                .ok()
                .and_then(Value::as_u64)
                .ok_or_else(|| format!("{path}: missing or non-integer `{k}`"))
        };
        let (calls, total_us, self_us) = (num("calls")?, num("total_us")?, num("self_us")?);
        if calls == 0 {
            return Err(format!("{path}: calls is 0"));
        }
        if self_us > total_us {
            return Err(format!(
                "{path}: self_us {self_us} exceeds total_us {total_us}"
            ));
        }
        let Value::Array(children) = v
            .field("children")
            .map_err(|_| format!("{path}: missing `children`"))?
        else {
            return Err(format!("{path}: `children` is not an array"));
        };
        let mut nodes = 1usize;
        let mut child_total = 0u64;
        for c in children {
            let (n, t) = check_node(c, &path)?;
            nodes += n;
            child_total += t;
        }
        if child_total > total_us {
            return Err(format!(
                "{path}: children total {child_total}us exceeds parent total {total_us}us"
            ));
        }
        Ok((nodes, total_us))
    }

    let mut stats = ProfileStats {
        lanes: 0,
        nodes: 0,
        total_us: 0,
    };
    for lane in lanes {
        let lane_name = lane
            .field("name")
            .ok()
            .and_then(Value::as_str)
            .ok_or("lane without a name")?;
        let Value::Array(children) = lane
            .field("children")
            .map_err(|_| format!("lane {lane_name}: missing `children`"))?
        else {
            return Err(format!("lane {lane_name}: `children` is not an array"));
        };
        let mut lane_nodes = 0usize;
        for c in children {
            let (n, t) = check_node(c, lane_name)?;
            lane_nodes += n;
            stats.total_us += t;
        }
        if lane_nodes > 0 {
            stats.lanes += 1;
        }
        stats.nodes += lane_nodes;
    }
    Ok(stats)
}

fn validate_collapsed(text: &str) -> Result<ProfileStats, String> {
    let mut stats = ProfileStats {
        lanes: 0,
        nodes: 0,
        total_us: 0,
    };
    let mut lanes: Vec<&str> = Vec::new();
    for (i, line) in text.lines().enumerate() {
        if line.is_empty() {
            continue;
        }
        let lineno = i + 1;
        let (stack, value) = line
            .rsplit_once(' ')
            .ok_or_else(|| format!("line {lineno}: no stack/value separator in `{line}`"))?;
        let value: u64 = value
            .parse()
            .map_err(|_| format!("line {lineno}: non-integer value in `{line}`"))?;
        if stack.split(';').any(|frame| frame.is_empty()) {
            return Err(format!("line {lineno}: empty frame in stack `{stack}`"));
        }
        let lane = stack.split(';').next().expect("non-empty split");
        if !lanes.contains(&lane) {
            lanes.push(lane);
        }
        stats.nodes += 1;
        stats.total_us += value;
    }
    stats.lanes = lanes.len();
    Ok(stats)
}

/// Enables recording and writes the collapsed-stack dump on drop — the
/// `ADAGP_PROFILE` contract. Returned by [`profile_guard_from_env`];
/// hold it for the lifetime of `main`.
#[derive(Debug)]
pub struct ProfileGuard {
    path: PathBuf,
}

impl Drop for ProfileGuard {
    fn drop(&mut self) {
        match write_collapsed(&self.path) {
            Ok(()) => eprintln!("collapsed-stack profile written to {}", self.path.display()),
            Err(e) => eprintln!("profile dump to {} failed: {e}", self.path.display()),
        }
    }
}

/// Snapshots the recorder, aggregates, and writes the collapsed-stack
/// dump to `path`.
///
/// # Errors
///
/// Returns any I/O error from creating or writing the file.
pub fn write_collapsed(path: &Path) -> std::io::Result<()> {
    std::fs::write(path, build_profile(&recorder::snapshot()).collapsed())
}

/// If `ADAGP_PROFILE=<path>` is set, enables span recording and returns
/// a guard that dumps the collapsed-stack profile to `<path>` when
/// dropped. Composes with [`crate::trace::trace_guard_from_env`] — hold
/// both to get a timeline and a flamegraph from one run.
pub fn profile_guard_from_env() -> Option<ProfileGuard> {
    let path = std::env::var_os(PROFILE_ENV)?;
    if path.is_empty() {
        return None;
    }
    recorder::set_enabled(true);
    Some(ProfileGuard {
        path: PathBuf::from(path),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::recorder::{LaneSnapshot, SpanRecord};

    fn rec(name: &str, start_us: u64, end_us: u64) -> SpanRecord {
        SpanRecord {
            name: name.into(),
            cat: "test",
            start_ns: start_us * 1_000,
            end_ns: end_us * 1_000,
        }
    }

    fn snap(lanes: Vec<(&str, Vec<SpanRecord>)>) -> TraceSnapshot {
        TraceSnapshot {
            lanes: lanes
                .into_iter()
                .map(|(name, spans)| LaneSnapshot {
                    name: name.into(),
                    spans,
                    dropped: 0,
                })
                .collect(),
        }
    }

    /// epoch(10..40) { step(12..20) { inner(13..15) } step(22..30) } and
    /// a disjoint tail(50..60); `step` merges to calls=2.
    fn sample() -> TraceSnapshot {
        snap(vec![(
            "main",
            vec![
                // Recorder order is completion order: children first.
                rec("inner", 13, 15),
                rec("step", 12, 20),
                rec("step", 22, 30),
                rec("epoch", 10, 40),
                rec("tail", 50, 60),
            ],
        )])
    }

    #[test]
    fn nesting_merging_and_self_times() {
        let p = build_profile(&sample());
        assert_eq!(p.lanes.len(), 1);
        assert_eq!(p.span_count(), 5);
        let roots = &p.lanes[0].roots;
        assert_eq!(roots.len(), 2, "epoch and tail are top-level");
        let epoch = &roots[0];
        assert_eq!(epoch.name, "epoch");
        assert_eq!((epoch.calls, epoch.total_us()), (1, 30));
        assert_eq!(epoch.children.len(), 1, "two step calls merged");
        let step = &epoch.children[0];
        assert_eq!(
            (step.name.as_str(), step.calls, step.total_us()),
            ("step", 2, 16)
        );
        assert_eq!(step.children[0].name, "inner");
        assert_eq!(step.self_us(), 16 - 2);
        assert_eq!(epoch.self_us(), 30 - 16);
        assert_eq!(roots[1].name, "tail");
        assert_eq!(p.lanes[0].total_ns(), (30 + 10) * 1_000);
    }

    #[test]
    fn flat_profile_is_self_sorted_and_complete() {
        let p = build_profile(&sample());
        let flat = p.flat();
        assert_eq!(flat.len(), 4);
        // epoch self 14, step self 14, tail 10, inner 2 — ties break by
        // total descending (epoch's 30 beats step's 16).
        assert_eq!(flat[0].name, "epoch");
        assert_eq!(flat[1].name, "step");
        assert_eq!(flat[2].name, "tail");
        assert_eq!(flat[3].name, "inner");
        let total_self: u64 = flat.iter().map(|r| r.self_ns).sum();
        assert_eq!(
            total_self,
            p.lanes[0].total_ns(),
            "self times partition busy time"
        );
        let text = p.render_flat();
        assert!(text.contains("5 spans"), "{text}");
        assert!(text.lines().count() >= 6);
    }

    #[test]
    fn collapsed_form_validates_and_sums_to_busy_time() {
        let p = build_profile(&sample());
        let collapsed = p.collapsed();
        assert!(
            collapsed.contains("main;epoch;step;inner 2\n"),
            "{collapsed}"
        );
        assert!(collapsed.contains("main;epoch 14\n"), "{collapsed}");
        assert!(collapsed.contains("main;tail 10\n"), "{collapsed}");
        let stats = validate_profile(&collapsed).expect("collapsed dump validates");
        assert_eq!(stats.nodes, 4);
        assert_eq!(stats.lanes, 1);
        assert_eq!(stats.total_us, 40);
    }

    #[test]
    fn collapsed_frames_are_sanitized() {
        let p = build_profile(&snap(vec![(
            "serve worker 0",
            vec![rec("GET /metrics", 0, 5), rec("cell a;b", 10, 12)],
        )]));
        let collapsed = p.collapsed();
        assert!(
            collapsed.contains("serve_worker_0;GET_/metrics 5\n"),
            "{collapsed}"
        );
        assert!(
            collapsed.contains("serve_worker_0;cell_a:b 2\n"),
            "{collapsed}"
        );
        validate_profile(&collapsed).expect("sanitized frames validate");
    }

    #[test]
    fn json_form_round_trips_through_the_validator() {
        let p = build_profile(&sample());
        let json = p.to_json("unit");
        let stats = validate_profile(&json).expect("json tree validates");
        assert_eq!(stats.nodes, 4);
        assert_eq!(stats.lanes, 1);
        assert_eq!(stats.total_us, 40, "root totals: epoch 30 + tail 10");
        assert!(json.contains("\"schema\": \"adagp-profile-v1\""));
    }

    #[test]
    fn multi_lane_profiles_keep_lanes_separate() {
        let p = build_profile(&snap(vec![
            ("a", vec![rec("work", 0, 10)]),
            ("b", vec![rec("work", 0, 20)]),
            ("idle", vec![]),
        ]));
        assert_eq!(p.lanes.len(), 2, "empty lanes are omitted");
        let flat = p.flat();
        assert_eq!(flat.len(), 1);
        assert_eq!(flat[0].calls, 2, "same name aggregates across lanes");
        let stats = validate_profile(&p.to_json("t")).unwrap();
        assert_eq!(stats.lanes, 2);
    }

    #[test]
    fn ill_formed_overlap_degrades_to_a_valid_tree() {
        // b partially overlaps a — impossible from one recording thread,
        // but the builder must stay consistent anyway.
        let p = build_profile(&snap(vec![(
            "main",
            vec![rec("a", 0, 10), rec("b", 5, 15)],
        )]));
        validate_profile(&p.to_json("t")).expect("clamped tree still validates");
        validate_profile(&p.collapsed()).expect("clamped collapsed still validates");
        // b starts inside a, so the sweep adopts it as a child clamped to
        // a's extent: the tree stays consistent, the overhang is dropped.
        let a = &p.lanes[0].roots[0];
        assert_eq!((a.name.as_str(), a.total_us()), ("a", 10));
        assert_eq!(a.children[0].total_us(), 5, "b clamped into a's extent");
    }

    #[test]
    fn validator_rejects_inconsistent_trees() {
        let bad_self = r#"{"schema": "adagp-profile-v1", "lanes": [
            {"name": "l", "children": [
                {"name": "x", "calls": 1, "total_us": 5, "self_us": 9, "children": []}
            ]}
        ]}"#;
        assert!(validate_profile(bad_self).unwrap_err().contains("self_us"));
        let bad_children = r#"{"schema": "adagp-profile-v1", "lanes": [
            {"name": "l", "children": [
                {"name": "x", "calls": 1, "total_us": 5, "self_us": 0, "children": [
                    {"name": "y", "calls": 1, "total_us": 4, "self_us": 4, "children": []},
                    {"name": "z", "calls": 1, "total_us": 4, "self_us": 4, "children": []}
                ]}
            ]}
        ]}"#;
        assert!(validate_profile(bad_children)
            .unwrap_err()
            .contains("children total"));
        let zero_calls = r#"{"schema": "adagp-profile-v1", "lanes": [
            {"name": "l", "children": [
                {"name": "x", "calls": 0, "total_us": 5, "self_us": 5, "children": []}
            ]}
        ]}"#;
        assert!(validate_profile(zero_calls).unwrap_err().contains("calls"));
        assert!(validate_profile("{}").is_err());
        assert!(validate_profile("stack with no value\n").is_err());
        assert!(validate_profile(";empty;frame 3\n").is_err());
    }

    #[test]
    fn empty_profiles_are_valid_but_empty() {
        let p = build_profile(&TraceSnapshot::default());
        let stats = validate_profile(&p.to_json("t")).unwrap();
        assert_eq!((stats.lanes, stats.nodes, stats.total_us), (0, 0, 0));
        assert_eq!(validate_profile("").unwrap().nodes, 0);
    }
}
