//! Atomic metric primitives: monotone counters, gauges, and log2-bucket
//! latency histograms.
//!
//! Everything here is a plain atomic — recording never locks, never
//! allocates and never blocks, so the primitives are safe to touch from
//! kernel hot paths and server request loops alike.
//!
//! ## Text rendering
//!
//! Counters and gauges render as the flat `name value` lines the serve
//! crate's `/metrics` endpoint has always spoken. Histograms extend that
//! form with three line shapes:
//!
//! ```text
//! <name>_bucket{le="<upper>"} <n>   one line per non-empty bucket
//! <name>_sum <total>
//! <name>_count <observations>
//! ```
//!
//! Buckets are **disjoint** log2 ranges, not cumulative: bucket `i ≥ 1`
//! holds observations in `[2^(i-1), 2^i)` and is labelled with its
//! inclusive upper bound `2^i - 1`; bucket 0 holds exact zeros, and the
//! top bucket (index 64, observations `≥ 2^63`) renders with the
//! conventional `le="+Inf"` label rather than a 20-digit bound. The
//! machine-checkable invariant every scraper can assert is therefore
//! `sum of all _bucket lines == _count` (on a quiescent snapshot).
//!
//! Non-empty histograms additionally render `<name>_p50`, `<name>_p95`
//! and `<name>_p99` summary lines, estimated by [`Histogram::quantile`]
//! with the **upper-bound convention**: the reported value is the
//! inclusive upper bound of the bucket the quantile's rank falls in, so
//! the estimate never undershoots the true quantile and overshoots it by
//! less than one power of two.

use std::sync::atomic::{AtomicI64, AtomicU64, Ordering};

/// A monotonically increasing counter.
#[derive(Debug, Default)]
pub struct Counter(AtomicU64);

impl Counter {
    /// A fresh zero counter.
    pub const fn new() -> Self {
        Counter(AtomicU64::new(0))
    }

    /// Adds `n`.
    pub fn add(&self, n: u64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    /// Adds one.
    pub fn inc(&self) {
        self.add(1);
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// A signed gauge (goes up and down).
#[derive(Debug, Default)]
pub struct Gauge(AtomicI64);

impl Gauge {
    /// A fresh zero gauge.
    pub const fn new() -> Self {
        Gauge(AtomicI64::new(0))
    }

    /// Adds `n` (negative to decrease).
    pub fn add(&self, n: i64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    /// Sets the gauge.
    pub fn set(&self, v: i64) {
        self.0.store(v, Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> i64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// Number of histogram buckets: one for exact zeros plus one per power
/// of two up to `u64::MAX`.
pub const HISTOGRAM_BUCKETS: usize = 65;

/// Bucket index an observation lands in: 0 for `v == 0`, otherwise
/// `i` such that `v ∈ [2^(i-1), 2^i)`.
///
/// ```
/// use adagp_obs::metric::bucket_index;
/// assert_eq!(bucket_index(0), 0);
/// assert_eq!(bucket_index(1), 1);
/// assert_eq!(bucket_index(2), 2);
/// assert_eq!(bucket_index(3), 2);
/// assert_eq!(bucket_index(1024), 11);
/// ```
pub fn bucket_index(v: u64) -> usize {
    if v == 0 {
        0
    } else {
        64 - v.leading_zeros() as usize
    }
}

/// Inclusive upper bound of bucket `i` (the `le` label).
pub fn bucket_upper(i: usize) -> u64 {
    if i == 0 {
        0
    } else if i >= 64 {
        u64::MAX
    } else {
        (1u64 << i) - 1
    }
}

/// A log2-bucket histogram of `u64` observations (typically latencies in
/// micro- or nanoseconds). Recording is three relaxed atomic adds.
#[derive(Debug)]
pub struct Histogram {
    buckets: [AtomicU64; HISTOGRAM_BUCKETS],
    sum: AtomicU64,
    count: AtomicU64,
}

impl Default for Histogram {
    fn default() -> Self {
        Histogram::new()
    }
}

impl Histogram {
    /// A fresh empty histogram.
    pub fn new() -> Self {
        Histogram {
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
            sum: AtomicU64::new(0),
            count: AtomicU64::new(0),
        }
    }

    /// Records one observation.
    pub fn record(&self, v: u64) {
        self.buckets[bucket_index(v)].fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(v, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
    }

    /// Observations recorded so far.
    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    /// Sum of all observations.
    pub fn sum(&self) -> u64 {
        self.sum.load(Ordering::Relaxed)
    }

    /// Estimates the `q`-quantile (`0.0 ≤ q ≤ 1.0`) from the log2
    /// buckets, or `None` for an empty histogram or an out-of-range `q`.
    ///
    /// The estimate follows the **upper-bound convention**: the rank
    /// `max(1, ceil(q × count))` is located in the cumulative bucket
    /// counts, and the inclusive upper bound of that bucket is returned
    /// ([`bucket_upper`]; `u64::MAX` when the rank lands in the `+Inf`
    /// bucket). The true quantile is never above the returned value and
    /// is within one power of two below it — a deliberately conservative
    /// estimate for thresholds and SLO lines.
    ///
    /// Like [`Histogram::render_into`], this reads a non-atomic snapshot:
    /// call it on a quiescent histogram for exact rank placement.
    pub fn quantile(&self, q: f64) -> Option<u64> {
        if !(0.0..=1.0).contains(&q) {
            return None;
        }
        let count = self.count();
        if count == 0 {
            return None;
        }
        let rank = ((q * count as f64).ceil() as u64).clamp(1, count);
        let mut seen = 0u64;
        for i in 0..HISTOGRAM_BUCKETS {
            seen += self.buckets[i].load(Ordering::Relaxed);
            if seen >= rank {
                return Some(bucket_upper(i));
            }
        }
        // Only reachable when recording raced the snapshot and _count ran
        // ahead of the bucket increments; answer conservatively.
        Some(u64::MAX)
    }

    /// `(upper bound, count)` of every non-empty bucket, in bound order.
    pub fn nonzero_buckets(&self) -> Vec<(u64, u64)> {
        (0..HISTOGRAM_BUCKETS)
            .filter_map(|i| {
                let n = self.buckets[i].load(Ordering::Relaxed);
                (n > 0).then_some((bucket_upper(i), n))
            })
            .collect()
    }

    /// Renders the `_bucket`/`_sum`/`_count` lines for a histogram named
    /// `prefix + name` into `out`.
    ///
    /// The snapshot is not atomic across the three line shapes: scrape a
    /// quiescent process (or accept a transiently skewed `_count`) — the
    /// `sum of _bucket == _count` invariant holds whenever no recording
    /// races the render.
    pub fn render_into(&self, out: &mut String, prefix: &str, name: &str) {
        for (upper, n) in self.nonzero_buckets() {
            if upper == u64::MAX {
                out.push_str(&format!("{prefix}{name}_bucket{{le=\"+Inf\"}} {n}\n"));
            } else {
                out.push_str(&format!("{prefix}{name}_bucket{{le=\"{upper}\"}} {n}\n"));
            }
        }
        out.push_str(&format!("{prefix}{name}_sum {}\n", self.sum()));
        out.push_str(&format!("{prefix}{name}_count {}\n", self.count()));
        for (label, q) in [("p50", 0.5), ("p95", 0.95), ("p99", 0.99)] {
            if let Some(v) = self.quantile(q) {
                out.push_str(&format!("{prefix}{name}_{label} {v}\n"));
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_and_gauge_basics() {
        let c = Counter::new();
        c.inc();
        c.add(4);
        assert_eq!(c.get(), 5);
        let g = Gauge::new();
        g.add(3);
        g.add(-5);
        assert_eq!(g.get(), -2);
        g.set(7);
        assert_eq!(g.get(), 7);
    }

    #[test]
    fn bucket_boundaries_are_disjoint_log2_ranges() {
        // Every observation lands in exactly one bucket, and the bucket's
        // label is its inclusive upper bound.
        for v in [0u64, 1, 2, 3, 4, 7, 8, 1023, 1024, u64::MAX] {
            let i = bucket_index(v);
            assert!(v <= bucket_upper(i), "{v} above its bucket bound");
            if i > 0 {
                assert!(v > bucket_upper(i - 1), "{v} fits the previous bucket");
            }
        }
        assert_eq!(bucket_upper(64), u64::MAX);
    }

    #[test]
    fn histogram_counts_sum_to_count() {
        let h = Histogram::new();
        for v in [0u64, 1, 1, 3, 900, 1024, 1_000_000] {
            h.record(v);
        }
        assert_eq!(h.count(), 7);
        assert_eq!(h.sum(), 1 + 1 + 3 + 900 + 1024 + 1_000_000);
        let buckets = h.nonzero_buckets();
        let total: u64 = buckets.iter().map(|&(_, n)| n).sum();
        assert_eq!(total, h.count());
        // 1 and 1 share a bucket; everything else is alone.
        assert!(buckets.iter().any(|&(upper, n)| upper == 1 && n == 2));
    }

    #[test]
    fn render_produces_the_documented_line_shapes() {
        let h = Histogram::new();
        h.record(5);
        h.record(6);
        h.record(100);
        let mut out = String::new();
        h.render_into(&mut out, "adagp_test_", "lat_us");
        assert!(
            out.contains("adagp_test_lat_us_bucket{le=\"7\"} 2\n"),
            "{out}"
        );
        assert!(
            out.contains("adagp_test_lat_us_bucket{le=\"127\"} 1\n"),
            "{out}"
        );
        assert!(out.contains("adagp_test_lat_us_sum 111\n"), "{out}");
        assert!(out.contains("adagp_test_lat_us_count 3\n"), "{out}");
        // No empty-bucket lines.
        assert_eq!(out.matches("_bucket{").count(), 2);
    }

    #[test]
    fn quantiles_follow_the_upper_bound_convention() {
        let h = Histogram::new();
        // 90 fast observations in [4,8) → bucket upper 7; 10 slow ones in
        // [1024,2048) → bucket upper 2047.
        for _ in 0..90 {
            h.record(5);
        }
        for _ in 0..10 {
            h.record(1500);
        }
        assert_eq!(h.quantile(0.5), Some(7));
        assert_eq!(h.quantile(0.9), Some(7)); // rank 90 is the last fast one
        assert_eq!(h.quantile(0.95), Some(2047));
        assert_eq!(h.quantile(0.99), Some(2047));
        assert_eq!(h.quantile(0.0), Some(7)); // rank clamps to 1
        assert_eq!(h.quantile(1.0), Some(2047));
        assert_eq!(h.quantile(1.5), None);
        assert_eq!(Histogram::new().quantile(0.5), None);
        // The estimate never undershoots the true quantile.
        assert!(h.quantile(0.5).unwrap() >= 5);
        assert!(h.quantile(0.95).unwrap() >= 1500);
    }

    #[test]
    fn quantile_of_top_bucket_is_u64_max() {
        let h = Histogram::new();
        h.record(u64::MAX);
        assert_eq!(h.quantile(0.5), Some(u64::MAX));
    }

    #[test]
    fn render_includes_quantile_summary_lines_only_when_populated() {
        let h = Histogram::new();
        let mut out = String::new();
        h.render_into(&mut out, "p_", "empty");
        assert!(!out.contains("_p50"), "empty histogram rendered quantiles");
        h.record(5);
        out.clear();
        h.render_into(&mut out, "p_", "one");
        assert!(out.contains("p_one_p50 7\n"), "{out}");
        assert!(out.contains("p_one_p95 7\n"), "{out}");
        assert!(out.contains("p_one_p99 7\n"), "{out}");
    }

    #[test]
    fn zero_lands_in_the_dedicated_zero_bucket() {
        let h = Histogram::new();
        h.record(0);
        h.record(0);
        assert_eq!((h.count(), h.sum()), (2, 0));
        assert_eq!(h.nonzero_buckets(), vec![(0, 2)]);
        let mut out = String::new();
        h.render_into(&mut out, "p_", "z");
        assert!(out.contains("p_z_bucket{le=\"0\"} 2\n"), "{out}");
    }

    #[test]
    fn u64_max_lands_in_the_top_bucket_rendered_as_inf() {
        let h = Histogram::new();
        h.record(u64::MAX);
        assert_eq!(bucket_index(u64::MAX), 64);
        assert_eq!(h.nonzero_buckets(), vec![(u64::MAX, 1)]);
        assert_eq!(h.sum(), u64::MAX);
        let mut out = String::new();
        h.render_into(&mut out, "p_", "top");
        // An inf-bucket-only histogram: exactly one bucket line, labelled
        // `+Inf`, reconciling with `_count`.
        assert!(out.contains("p_top_bucket{le=\"+Inf\"} 1\n"), "{out}");
        assert!(
            !out.contains(&format!("le=\"{}\"", u64::MAX)),
            "numeric label leaked for the top bucket: {out}"
        );
        assert!(out.contains("p_top_count 1\n"), "{out}");
        assert_eq!(out.matches("_bucket{").count(), 1);
    }

    #[test]
    fn bucket_boundary_values_land_in_the_right_buckets() {
        // 2^k is the first value of bucket k+1; 2^k - 1 is the last of
        // bucket k: the boundary pair always straddles two buckets.
        for k in 1..=63usize {
            let lo = 1u64 << (k - 1).min(62); // representative interior value
            let first = 1u64 << k;
            let last = first - 1;
            assert_eq!(bucket_index(last), k, "2^{k}-1 closes bucket {k}");
            assert_eq!(bucket_index(first), k + 1, "2^{k} opens bucket {}", k + 1);
            assert!(bucket_index(lo) <= k);
        }
        // Record one boundary pair and check the counts reconcile.
        let h = Histogram::new();
        for v in [1u64, 1 << 10, (1 << 10) - 1, 1 << 62, u64::MAX, 0] {
            h.record(v);
        }
        let total: u64 = h.nonzero_buckets().iter().map(|&(_, n)| n).sum();
        assert_eq!(total, h.count(), "sum(_bucket) == _count");
        assert_eq!(h.count(), 6);
    }
}
