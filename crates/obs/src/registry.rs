//! The process-global metric registry: named counters, gauges and
//! histograms any crate can register once and hammer lock-free forever.
//!
//! Registration takes the registry lock (once per metric, at first use —
//! callers cache the returned `Arc`, typically in a `OnceLock`);
//! recording afterwards is pure atomics. Rendering walks the registry in
//! registration order and emits the flat `name value` text form plus the
//! `_bucket`/`_sum`/`_count` histogram lines documented in
//! [`crate::metric`].

use crate::metric::{Counter, Gauge, Histogram};
use std::sync::{Arc, Mutex, OnceLock};

enum Metric {
    Counter(Arc<Counter>),
    Gauge(Arc<Gauge>),
    Histogram(Arc<Histogram>),
}

/// A named collection of metrics with a stable render order.
#[derive(Default)]
pub struct Registry {
    entries: Mutex<Vec<(String, Metric)>>,
}

impl std::fmt::Debug for Registry {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "Registry({} metrics)",
            self.entries.lock().unwrap().len()
        )
    }
}

impl Registry {
    /// An empty registry.
    pub fn new() -> Self {
        Registry::default()
    }

    /// The counter named `name`, creating it on first use.
    ///
    /// # Panics
    ///
    /// Panics if `name` is already registered as a different metric kind.
    pub fn counter(&self, name: &str) -> Arc<Counter> {
        let mut entries = self.entries.lock().unwrap();
        if let Some((_, m)) = entries.iter().find(|(n, _)| n == name) {
            match m {
                Metric::Counter(c) => return Arc::clone(c),
                _ => panic!("metric `{name}` is not a counter"),
            }
        }
        let c = Arc::new(Counter::new());
        entries.push((name.to_string(), Metric::Counter(Arc::clone(&c))));
        c
    }

    /// The gauge named `name`, creating it on first use.
    ///
    /// # Panics
    ///
    /// Panics if `name` is already registered as a different metric kind.
    pub fn gauge(&self, name: &str) -> Arc<Gauge> {
        let mut entries = self.entries.lock().unwrap();
        if let Some((_, m)) = entries.iter().find(|(n, _)| n == name) {
            match m {
                Metric::Gauge(g) => return Arc::clone(g),
                _ => panic!("metric `{name}` is not a gauge"),
            }
        }
        let g = Arc::new(Gauge::new());
        entries.push((name.to_string(), Metric::Gauge(Arc::clone(&g))));
        g
    }

    /// The histogram named `name`, creating it on first use.
    ///
    /// # Panics
    ///
    /// Panics if `name` is already registered as a different metric kind.
    pub fn histogram(&self, name: &str) -> Arc<Histogram> {
        let mut entries = self.entries.lock().unwrap();
        if let Some((_, m)) = entries.iter().find(|(n, _)| n == name) {
            match m {
                Metric::Histogram(h) => return Arc::clone(h),
                _ => panic!("metric `{name}` is not a histogram"),
            }
        }
        let h = Arc::new(Histogram::new());
        entries.push((name.to_string(), Metric::Histogram(Arc::clone(&h))));
        h
    }

    /// Renders every metric as `prefix + name [+ histogram suffix]`
    /// lines, in registration order.
    pub fn render(&self, prefix: &str) -> String {
        let entries = self.entries.lock().unwrap();
        let mut out = String::new();
        for (name, metric) in entries.iter() {
            match metric {
                Metric::Counter(c) => out.push_str(&format!("{prefix}{name} {}\n", c.get())),
                Metric::Gauge(g) => out.push_str(&format!("{prefix}{name} {}\n", g.get())),
                Metric::Histogram(h) => h.render_into(&mut out, prefix, name),
            }
        }
        out
    }
}

static GLOBAL: OnceLock<Registry> = OnceLock::new();

/// The process-global registry (the one the runtime pool and the sweep
/// runner record into, and `adagp-serve` folds into `/metrics`).
pub fn registry() -> &'static Registry {
    GLOBAL.get_or_init(Registry::new)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_name_returns_the_same_metric() {
        let r = Registry::new();
        let a = r.counter("hits");
        let b = r.counter("hits");
        a.inc();
        b.inc();
        assert_eq!(a.get(), 2);
        assert!(Arc::ptr_eq(&a, &b));
    }

    #[test]
    #[should_panic(expected = "not a counter")]
    fn kind_mismatch_is_loud() {
        let r = Registry::new();
        let _ = r.histogram("lat");
        let _ = r.counter("lat");
    }

    #[test]
    fn render_is_registration_ordered_and_parseable_shaped() {
        let r = Registry::new();
        r.counter("first").add(1);
        r.histogram("lat_us").record(10);
        r.gauge("depth").set(-2);
        let text = r.render("adagp_obs_");
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines[0], "adagp_obs_first 1");
        assert!(lines[1].starts_with("adagp_obs_lat_us_bucket{le=\"15\"} 1"));
        assert!(text.contains("adagp_obs_lat_us_sum 10"));
        assert!(text.contains("adagp_obs_lat_us_count 1"));
        assert!(text.contains("adagp_obs_depth -2"));
        // Every line is the flat `name value` form (one space).
        for line in text.lines() {
            assert_eq!(line.split(' ').count(), 2, "{line}");
        }
    }
}
