//! Critical-path and stall attribution over both timeline sources.
//!
//! The workspace records two kinds of timelines: `adagp-sim` produces
//! exact task DAG executions in the cycle domain, and the span recorder
//! ([`crate::recorder`]) captures measured wall-clock lanes. This module
//! answers the question both leave open — *why* is the makespan what it
//! is — with one report shape for both sources:
//!
//! * [`analyze_dag`] walks a simulated DAG backwards from the last
//!   completion along **zero-slack edges**: a task that started the
//!   moment it became ready is bound by its gating dependency; a task
//!   that waited in a resource FIFO is bound by the completion that
//!   freed its slot. Either way the predecessor's end cycle equals the
//!   task's start cycle *exactly*, so the chain tiles `[0, makespan]`
//!   with no gaps and the summed chain-segment durations equal the
//!   simulated makespan **bit-exactly** — the invariant
//!   [`validate_critpath`] machine-checks. Chain time aggregates into a
//!   per-`(lane, kind)` blame table (compute vs DRAM/spill vs predictor
//!   time), and the FIFO waits the chain absorbed are reported per lane
//!   as admission queueing.
//! * [`analyze_snapshot`] folds measured pid-2 span buffers per lane
//!   into gap-attributed segments: span coverage is **busy**, a gap no
//!   longer than the classifier threshold (by default the pool's
//!   queue-wait histogram p95 — see [`measured_gap_threshold_ns`]) is
//!   **queue-wait**, and a longer gap is **idle**. Per lane,
//!   `busy + queue-wait + idle == extent` exactly, and the same blame
//!   table shape comes out with fractions of the total lane extent.
//!
//! Reports serialize as the `adagp-critpath-v1` JSON schema (tagged,
//! like `adagp-profile-v1`) and render as a sorted blame table plus a
//! top-K chain listing.

use crate::recorder::TraceSnapshot;
use serde::Value;

/// Schema tag every serialized critical-path report carries.
pub const CRITPATH_SCHEMA: &str = "adagp-critpath-v1";

/// Tolerance for "blame fractions sum to one" float checks.
pub const FRACTION_TOLERANCE: f64 = 1e-9;

/// One task of a finished DAG execution, in the neutral form the
/// analyzer consumes (`adagp-sim` converts its `SimResult` into this;
/// anything with exact start/end/ready times and admission causes can).
#[derive(Debug, Clone)]
pub struct CritTask {
    /// Display label.
    pub label: String,
    /// Work category (blame table column), e.g. `fwd` or `weight-load`.
    pub kind: String,
    /// Timeline lane (blame table row), e.g. the resource name.
    pub lane: String,
    /// Start time.
    pub start: u64,
    /// End time (`>= start`).
    pub end: u64,
    /// Time the task became ready (all dependencies complete).
    pub ready: u64,
    /// Dependency task indices.
    pub deps: Vec<usize>,
    /// For tasks that waited in an admission queue: the task whose
    /// completion freed the capacity they started on (its `end` equals
    /// this task's `start` exactly).
    pub unblocked_by: Option<usize>,
}

/// How a chain segment's start time was bound.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Via {
    /// The segment starts at time zero — the chain's origin.
    Start,
    /// Bound by a gating dependency (started the moment it was ready).
    Dep,
    /// Bound by resource admission (waited for the freeing completion).
    Resource,
}

impl Via {
    /// The tag serialized into the report.
    pub fn name(&self) -> &'static str {
        match self {
            Via::Start => "start",
            Via::Dep => "dep",
            Via::Resource => "resource",
        }
    }
}

/// One segment of the zero-slack chain, in time order.
#[derive(Debug, Clone)]
pub struct ChainSegment {
    /// Task label.
    pub label: String,
    /// Work category.
    pub kind: String,
    /// Lane (resource) name.
    pub lane: String,
    /// Segment start time.
    pub start: u64,
    /// Segment end time.
    pub end: u64,
    /// Time the task became ready (`start - ready` is its queue wait).
    pub ready: u64,
    /// How the segment's start was bound.
    pub via: Via,
}

/// One row of the blame table: time the critical path spent in a
/// `(lane, kind)` bucket.
#[derive(Debug, Clone, PartialEq)]
pub struct BlameEntry {
    /// Lane (resource or thread) name.
    pub lane: String,
    /// Work category (`fwd`, `weight-load`, … for sim; `busy`,
    /// `queue-wait`, `idle` for measured lanes).
    pub kind: String,
    /// Time in the report's unit.
    pub time: u64,
    /// `time` over the report's denominator (sim: makespan; measured:
    /// summed lane extents). All fractions sum to one.
    pub fraction: f64,
}

/// Admission queueing the zero-slack chain absorbed, per lane: the sum
/// of `start - ready` over chain tasks that waited in that lane's FIFO.
/// These cycles overlap the blocking predecessors' blame segments — they
/// answer "how long was the chain stuck in queues", not "who ran".
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct QueueWait {
    /// Lane the chain task queued on.
    pub lane: String,
    /// Summed wait time.
    pub time: u64,
}

/// Gap-attributed summary of one measured lane.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MeasuredLane {
    /// Lane name (thread name, or dominant stage label after
    /// [`relabel_lanes_by_cat`]).
    pub name: String,
    /// First span start, nanoseconds since the trace epoch.
    pub first: u64,
    /// Last span end minus first span start.
    pub extent: u64,
    /// Time covered by at least one span.
    pub busy: u64,
    /// Inter-span gaps no longer than the classifier threshold.
    pub queue_wait: u64,
    /// Inter-span gaps longer than the threshold.
    pub idle: u64,
    /// Spans recorded on the lane.
    pub spans: u64,
}

/// A complete critical-path report — one shape for both timeline
/// sources, distinguished by `mode`.
#[derive(Debug, Clone)]
pub struct CritReport {
    /// Human title.
    pub title: String,
    /// `"sim"` or `"measured"`.
    pub mode: &'static str,
    /// Time unit: `"cycles"` (sim) or `"ns"` (measured).
    pub unit: &'static str,
    /// Sim: the simulated makespan (bit-exactly the summed chain).
    /// Measured: the global extent across all lanes.
    pub makespan: u64,
    /// Blame table, sorted by descending time then lane/kind.
    pub blame: Vec<BlameEntry>,
    /// The zero-slack chain in time order (sim mode only).
    pub chain: Vec<ChainSegment>,
    /// Per-lane admission queueing on the chain (sim mode only).
    pub queue_wait: Vec<QueueWait>,
    /// Per-lane gap attribution (measured mode only).
    pub lanes: Vec<MeasuredLane>,
}

fn add_blame(blame: &mut Vec<BlameEntry>, lane: &str, kind: &str, time: u64) {
    if time == 0 {
        return;
    }
    match blame.iter_mut().find(|b| b.lane == lane && b.kind == kind) {
        Some(b) => b.time += time,
        None => blame.push(BlameEntry {
            lane: lane.to_string(),
            kind: kind.to_string(),
            time,
            fraction: 0.0,
        }),
    }
}

/// Fills fractions from `denominator` and applies the canonical sort
/// (descending time, then lane, then kind).
fn finish_blame(blame: &mut [BlameEntry], denominator: u64) {
    for b in blame.iter_mut() {
        b.fraction = if denominator == 0 {
            0.0
        } else {
            b.time as f64 / denominator as f64
        };
    }
    blame.sort_by(|a, b| {
        b.time
            .cmp(&a.time)
            .then_with(|| a.lane.cmp(&b.lane))
            .then_with(|| a.kind.cmp(&b.kind))
    });
}

/// Walks the zero-slack chain of a finished DAG execution and attributes
/// its time.
///
/// The walk starts at the task with the greatest end time (smallest
/// index on ties) and repeatedly steps to the predecessor that bound the
/// current task's start: the gating dependency when `start == ready`
/// (the dependency whose end equals `ready`, smallest index on ties), or
/// `unblocked_by` when the task waited for admission. Both predecessors
/// end exactly at the current start, so the chain is contiguous and its
/// summed durations equal the makespan bit-exactly. A malformed input
/// (no predecessor ending at the start time) truncates the chain, which
/// [`validate_critpath`] then rejects — garbage in, loud failure out.
pub fn analyze_dag(tasks: &[CritTask], title: &str) -> CritReport {
    let mut report = CritReport {
        title: title.to_string(),
        mode: "sim",
        unit: "cycles",
        makespan: 0,
        blame: Vec::new(),
        chain: Vec::new(),
        queue_wait: Vec::new(),
        lanes: Vec::new(),
    };
    let Some(last) = (0..tasks.len()).reduce(|best, i| {
        if tasks[i].end > tasks[best].end {
            i
        } else {
            best
        }
    }) else {
        return report;
    };
    report.makespan = tasks[last].end;

    let mut cur = last;
    let mut chain_rev: Vec<(usize, Via)> = Vec::new();
    loop {
        let t = &tasks[cur];
        let via = if t.start == 0 {
            Via::Start
        } else if t.start > t.ready {
            Via::Resource
        } else {
            Via::Dep
        };
        chain_rev.push((cur, via));
        let pred = match via {
            Via::Start => break,
            Via::Resource => t.unblocked_by.filter(|&p| tasks[p].end == t.start),
            Via::Dep => t
                .deps
                .iter()
                .copied()
                .filter(|&d| tasks[d].end == t.start)
                .min(),
        };
        match pred {
            Some(p) => cur = p,
            None => break, // malformed input; the validator will object
        }
    }
    chain_rev.reverse();

    for &(id, via) in &chain_rev {
        let t = &tasks[id];
        report.chain.push(ChainSegment {
            label: t.label.clone(),
            kind: t.kind.clone(),
            lane: t.lane.clone(),
            start: t.start,
            end: t.end,
            ready: t.ready,
            via,
        });
        add_blame(&mut report.blame, &t.lane, &t.kind, t.end - t.start);
        if via == Via::Resource {
            let wait = t.start - t.ready;
            match report.queue_wait.iter_mut().find(|q| q.lane == t.lane) {
                Some(q) => q.time += wait,
                None => report.queue_wait.push(QueueWait {
                    lane: t.lane.clone(),
                    time: wait,
                }),
            }
        }
    }
    finish_blame(&mut report.blame, report.makespan);
    report
        .queue_wait
        .sort_by(|a, b| b.time.cmp(&a.time).then_with(|| a.lane.cmp(&b.lane)));
    report
}

/// The default measured-lane gap classifier threshold: the pool's
/// queue-wait histogram (`runtime_pool_queue_wait_us`, recorded by
/// `adagp-runtime` whenever tracing is enabled) p95, converted to
/// nanoseconds. `None` until that histogram has observations — callers
/// then treat every gap as idle or pass an explicit threshold.
pub fn measured_gap_threshold_ns() -> Option<u64> {
    crate::registry()
        .histogram("runtime_pool_queue_wait_us")
        .quantile(0.95)
        .map(|us| us.saturating_mul(1000))
}

/// Folds a recorder snapshot into the measured critical-path report:
/// per lane, span coverage is busy time and inter-span gaps classify as
/// queue-wait (`gap <= threshold_ns`) or idle. Lanes without spans are
/// skipped. See the module docs for the exact identities the result
/// satisfies.
pub fn analyze_snapshot(
    snap: &TraceSnapshot,
    threshold_ns: Option<u64>,
    title: &str,
) -> CritReport {
    let threshold = threshold_ns.unwrap_or(0);
    let mut report = CritReport {
        title: title.to_string(),
        mode: "measured",
        unit: "ns",
        makespan: 0,
        blame: Vec::new(),
        chain: Vec::new(),
        queue_wait: Vec::new(),
        lanes: Vec::new(),
    };
    let mut global: Option<(u64, u64)> = None;
    for lane in &snap.lanes {
        if lane.spans.is_empty() {
            continue;
        }
        // Merge spans into disjoint busy intervals (nested and
        // partially overlapping spans both coalesce).
        let mut order: Vec<usize> = (0..lane.spans.len()).collect();
        order.sort_by_key(|&i| {
            let s = &lane.spans[i];
            (s.start_ns, std::cmp::Reverse(s.end_ns))
        });
        let mut merged: Vec<(u64, u64)> = Vec::new();
        for i in order {
            let s = &lane.spans[i];
            let (a, b) = (s.start_ns, s.end_ns.max(s.start_ns));
            match merged.last_mut() {
                Some((_, e)) if a <= *e => *e = (*e).max(b),
                _ => merged.push((a, b)),
            }
        }
        let first = merged[0].0;
        let last = merged[merged.len() - 1].1;
        let busy: u64 = merged.iter().map(|&(a, b)| b - a).sum();
        let mut queue_wait = 0u64;
        let mut idle = 0u64;
        for w in merged.windows(2) {
            let gap = w[1].0 - w[0].1;
            if gap <= threshold {
                queue_wait += gap;
            } else {
                idle += gap;
            }
        }
        let extent = last - first;
        debug_assert_eq!(busy + queue_wait + idle, extent);
        global = Some(match global {
            None => (first, last),
            Some((lo, hi)) => (lo.min(first), hi.max(last)),
        });
        add_blame(&mut report.blame, &lane.name, "busy", busy);
        add_blame(&mut report.blame, &lane.name, "queue-wait", queue_wait);
        add_blame(&mut report.blame, &lane.name, "idle", idle);
        report.lanes.push(MeasuredLane {
            name: lane.name.clone(),
            first,
            extent,
            busy,
            queue_wait,
            idle,
            spans: lane.spans.len() as u64,
        });
    }
    if let Some((lo, hi)) = global {
        report.makespan = hi - lo;
    }
    let total_extent: u64 = report.lanes.iter().map(|l| l.extent).sum();
    finish_blame(&mut report.blame, total_extent);
    report
}

/// Renames each lane of `snap` to the name of its most frequent span of
/// category `cat` (e.g. `"stage"`), when it has any — mapping thread
/// lanes onto pipeline stages so a measured report's lanes pair with a
/// sim report's resources. Lanes carrying several names of that category
/// take the most frequent one (first recorded on ties); lanes without
/// any keep their thread name.
pub fn relabel_lanes_by_cat(snap: &TraceSnapshot, cat: &str) -> TraceSnapshot {
    let mut out = snap.clone();
    for lane in &mut out.lanes {
        let mut counts: Vec<(&str, usize)> = Vec::new();
        for s in &lane.spans {
            if s.cat == cat {
                match counts.iter_mut().find(|(n, _)| *n == s.name) {
                    Some((_, c)) => *c += 1,
                    None => counts.push((&s.name, 1)),
                }
            }
        }
        if let Some(&(name, _)) = counts.iter().max_by_key(|&&(_, c)| c) {
            lane.name = name.to_string();
        }
    }
    out
}

impl CritReport {
    /// Serializes the report as `adagp-critpath-v1` JSON (pretty, with a
    /// trailing newline).
    pub fn to_json(&self) -> String {
        let blame: Vec<Value> = self
            .blame
            .iter()
            .map(|b| {
                Value::object(vec![
                    ("lane", Value::String(b.lane.clone())),
                    ("kind", Value::String(b.kind.clone())),
                    ("time", Value::UInt(b.time)),
                    ("fraction", Value::Float(b.fraction)),
                ])
            })
            .collect();
        let chain: Vec<Value> = self
            .chain
            .iter()
            .map(|s| {
                Value::object(vec![
                    ("label", Value::String(s.label.clone())),
                    ("kind", Value::String(s.kind.clone())),
                    ("lane", Value::String(s.lane.clone())),
                    ("start", Value::UInt(s.start)),
                    ("end", Value::UInt(s.end)),
                    ("ready", Value::UInt(s.ready)),
                    ("via", Value::String(s.via.name().into())),
                ])
            })
            .collect();
        let queue_wait: Vec<Value> = self
            .queue_wait
            .iter()
            .map(|q| {
                Value::object(vec![
                    ("lane", Value::String(q.lane.clone())),
                    ("time", Value::UInt(q.time)),
                ])
            })
            .collect();
        let lanes: Vec<Value> = self
            .lanes
            .iter()
            .map(|l| {
                Value::object(vec![
                    ("name", Value::String(l.name.clone())),
                    ("first", Value::UInt(l.first)),
                    ("extent", Value::UInt(l.extent)),
                    ("busy", Value::UInt(l.busy)),
                    ("queue_wait", Value::UInt(l.queue_wait)),
                    ("idle", Value::UInt(l.idle)),
                    ("spans", Value::UInt(l.spans)),
                ])
            })
            .collect();
        let root = Value::object(vec![
            ("schema", Value::String(CRITPATH_SCHEMA.into())),
            ("title", Value::String(self.title.clone())),
            ("mode", Value::String(self.mode.into())),
            ("unit", Value::String(self.unit.into())),
            ("makespan", Value::UInt(self.makespan)),
            ("blame", Value::Array(blame)),
            ("chain", Value::Array(chain)),
            ("queue_wait", Value::Array(queue_wait)),
            ("lanes", Value::Array(lanes)),
        ]);
        let mut out = serde::json::to_string_pretty(&root);
        out.push('\n');
        out
    }

    /// Renders the blame table plus, in sim mode, the queueing summary
    /// and the `top_k` longest chain segments (measured mode lists the
    /// lanes instead).
    pub fn render(&self, top_k: usize) -> String {
        let mut out = String::new();
        out.push_str(&format!(
            "critical path: {} [{}]\nmakespan {} {}\n",
            self.title, self.mode, self.makespan, self.unit
        ));
        out.push_str("blame (lane x kind, share of ");
        out.push_str(if self.mode == "sim" {
            "makespan):\n"
        } else {
            "total lane extent):\n"
        });
        for b in &self.blame {
            out.push_str(&format!(
                "  {:<14} {:<12} {:>14} {:>6.1}%\n",
                b.lane,
                b.kind,
                b.time,
                b.fraction * 100.0
            ));
        }
        if self.mode == "sim" {
            if !self.queue_wait.is_empty() {
                out.push_str("admission queueing absorbed on the chain:\n");
                for q in &self.queue_wait {
                    out.push_str(&format!("  {:<14} {:>14}\n", q.lane, q.time));
                }
            }
            let mut by_dur: Vec<&ChainSegment> = self.chain.iter().collect();
            by_dur.sort_by_key(|s| (std::cmp::Reverse(s.end - s.start), s.start));
            out.push_str(&format!(
                "chain: {} segments, longest {}:\n",
                self.chain.len(),
                top_k.min(by_dur.len())
            ));
            for s in by_dur.iter().take(top_k) {
                out.push_str(&format!(
                    "  [{:>12}..{:>12}) {:>12}  {:<14} {:<12} {} (via {})\n",
                    s.start,
                    s.end,
                    s.end - s.start,
                    s.lane,
                    s.kind,
                    s.label,
                    s.via.name()
                ));
            }
        } else {
            out.push_str("lanes (busy / queue-wait / idle of extent):\n");
            for l in &self.lanes {
                out.push_str(&format!(
                    "  {:<18} busy {:>14}  queue {:>12}  idle {:>14}  extent {:>14}  ({} spans)\n",
                    l.name, l.busy, l.queue_wait, l.idle, l.extent, l.spans
                ));
            }
        }
        out
    }

    /// The blame fraction aggregated over one lane (all kinds).
    pub fn lane_fraction(&self, lane: &str) -> f64 {
        self.blame
            .iter()
            .filter(|b| b.lane == lane)
            .map(|b| b.fraction)
            .sum()
    }
}

/// Shape statistics [`validate_critpath`] extracts from a report.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CritStats {
    /// `"sim"` or `"measured"`.
    pub mode: String,
    /// The reported makespan.
    pub makespan: u64,
    /// Chain segments (sim mode).
    pub chain: usize,
    /// Blame table rows.
    pub blame: usize,
    /// Measured lanes (measured mode).
    pub lanes: usize,
}

fn req_str(v: &Value, k: &str) -> Result<String, String> {
    v.field(k)
        .ok()
        .and_then(Value::as_str)
        .map(str::to_string)
        .ok_or_else(|| format!("missing string field {k}"))
}

fn req_u64(v: &Value, k: &str) -> Result<u64, String> {
    v.field(k)
        .ok()
        .and_then(Value::as_u64)
        .ok_or_else(|| format!("missing u64 field {k}"))
}

fn req_array<'a>(v: &'a Value, k: &str) -> Result<&'a [Value], String> {
    match v.field(k) {
        Ok(Value::Array(a)) => Ok(a),
        _ => Err(format!("missing array field {k}")),
    }
}

/// Parses and machine-checks an `adagp-critpath-v1` report: chain
/// contiguity from cycle 0 to the makespan, `Σ blame == makespan`
/// bit-exactly, zero-slack consistency of every `via` tag (sim mode),
/// and the per-lane `busy + queue-wait + idle == extent` identities
/// (measured mode). Blame fractions must sum to one within
/// [`FRACTION_TOLERANCE`] whenever the denominator is non-zero.
///
/// # Errors
///
/// Returns a description of the first violated invariant.
pub fn validate_critpath(text: &str) -> Result<CritStats, String> {
    let root = serde::json::parse_value(text).map_err(|e| format!("not JSON: {e}"))?;
    let schema = req_str(&root, "schema")?;
    if schema != CRITPATH_SCHEMA {
        return Err(format!("schema is {schema:?}, want {CRITPATH_SCHEMA:?}"));
    }
    let mode = req_str(&root, "mode")?;
    if mode != "sim" && mode != "measured" {
        return Err(format!("unknown mode {mode:?}"));
    }
    req_str(&root, "unit")?;
    let makespan = req_u64(&root, "makespan")?;

    let blame = req_array(&root, "blame")?;
    let mut blame_time = 0u64;
    let mut blame_fraction = 0f64;
    for b in blame {
        req_str(b, "lane")?;
        req_str(b, "kind")?;
        let time = req_u64(b, "time")?;
        let frac = b
            .field("fraction")
            .ok()
            .and_then(Value::as_f64)
            .ok_or("blame entry without numeric fraction")?;
        if !frac.is_finite() || !(0.0..=1.0 + FRACTION_TOLERANCE).contains(&frac) {
            return Err(format!("blame fraction {frac} out of [0, 1]"));
        }
        blame_time += time;
        blame_fraction += frac;
    }

    let chain = req_array(&root, "chain")?;
    let lanes = req_array(&root, "lanes")?;

    if mode == "sim" {
        if !lanes.is_empty() {
            return Err("sim report carries measured lanes".into());
        }
        if chain.is_empty() && makespan != 0 {
            return Err(format!("empty chain but makespan {makespan}"));
        }
        let mut cursor = 0u64;
        let mut chain_sum = 0u64;
        let mut expected_wait: Vec<(String, u64)> = Vec::new();
        for (i, seg) in chain.iter().enumerate() {
            let start = req_u64(seg, "start")?;
            let end = req_u64(seg, "end")?;
            let ready = req_u64(seg, "ready")?;
            let via = req_str(seg, "via")?;
            if end < start {
                return Err(format!("chain[{i}] ends before it starts"));
            }
            if start != cursor {
                return Err(format!(
                    "chain[{i}] starts at {start}, breaking contiguity at {cursor}"
                ));
            }
            match via.as_str() {
                "start" => {
                    if i != 0 {
                        return Err(format!("chain[{i}] tagged 'start' mid-chain"));
                    }
                    if start != 0 {
                        return Err("chain origin does not start at 0".into());
                    }
                }
                "dep" => {
                    if start != ready {
                        return Err(format!(
                            "chain[{i}] via dep but start {start} != ready {ready} (slack)"
                        ));
                    }
                }
                "resource" => {
                    if start <= ready {
                        return Err(format!(
                            "chain[{i}] via resource but start {start} <= ready {ready}"
                        ));
                    }
                    let lane = req_str(seg, "lane")?;
                    match expected_wait.iter_mut().find(|(l, _)| *l == lane) {
                        Some((_, t)) => *t += start - ready,
                        None => expected_wait.push((lane, start - ready)),
                    }
                }
                other => return Err(format!("chain[{i}] has unknown via {other:?}")),
            }
            if i == 0 && via != "start" {
                return Err("chain does not begin with its origin segment".into());
            }
            cursor = end;
            chain_sum += end - start;
        }
        if cursor != makespan {
            return Err(format!(
                "chain ends at {cursor}, not at the makespan {makespan}"
            ));
        }
        if chain_sum != makespan {
            return Err(format!(
                "chain durations sum to {chain_sum}, not the makespan {makespan}"
            ));
        }
        if blame_time != makespan {
            return Err(format!(
                "blame sums to {blame_time}, not the makespan {makespan}"
            ));
        }
        // The queueing table must be exactly the chain's per-lane
        // aggregate of `start - ready` over resource-bound segments.
        let queue_wait = req_array(&root, "queue_wait")?;
        if queue_wait.len() != expected_wait.len() {
            return Err(format!(
                "queue_wait has {} lanes, the chain implies {}",
                queue_wait.len(),
                expected_wait.len()
            ));
        }
        for q in queue_wait {
            let lane = req_str(q, "lane")?;
            let time = req_u64(q, "time")?;
            match expected_wait.iter().find(|(l, _)| *l == lane) {
                Some(&(_, t)) if t == time => {}
                Some(&(_, t)) => {
                    return Err(format!(
                        "queue_wait[{lane}] is {time}, the chain implies {t}"
                    ))
                }
                None => return Err(format!("queue_wait names unknown lane {lane:?}")),
            }
        }
        if makespan > 0 && (blame_fraction - 1.0).abs() > FRACTION_TOLERANCE {
            return Err(format!("blame fractions sum to {blame_fraction}, not 1"));
        }
    } else {
        if !chain.is_empty() {
            return Err("measured report carries a sim chain".into());
        }
        let mut total_extent = 0u64;
        for (i, l) in lanes.iter().enumerate() {
            req_str(l, "name")?;
            let extent = req_u64(l, "extent")?;
            let busy = req_u64(l, "busy")?;
            let queue_wait = req_u64(l, "queue_wait")?;
            let idle = req_u64(l, "idle")?;
            if busy + queue_wait + idle != extent {
                return Err(format!(
                    "lane[{i}]: busy {busy} + queue {queue_wait} + idle {idle} != extent {extent}"
                ));
            }
            if extent > makespan {
                return Err(format!(
                    "lane[{i}] extent {extent} exceeds the global extent {makespan}"
                ));
            }
            total_extent += extent;
        }
        if blame_time != total_extent {
            return Err(format!(
                "blame sums to {blame_time}, not the total lane extent {total_extent}"
            ));
        }
        if total_extent > 0 && (blame_fraction - 1.0).abs() > FRACTION_TOLERANCE {
            return Err(format!("blame fractions sum to {blame_fraction}, not 1"));
        }
    }

    Ok(CritStats {
        mode,
        makespan,
        chain: chain.len(),
        blame: blame.len(),
        lanes: lanes.len(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::recorder::{LaneSnapshot, SpanRecord};

    fn task(
        lane: &str,
        kind: &str,
        start: u64,
        end: u64,
        ready: u64,
        deps: Vec<usize>,
        unblocked_by: Option<usize>,
    ) -> CritTask {
        CritTask {
            label: format!("{kind}@{start}"),
            kind: kind.into(),
            lane: lane.into(),
            start,
            end,
            ready,
            deps,
            unblocked_by,
        }
    }

    #[test]
    fn serial_chain_is_fully_blamed() {
        // fwd [0,10) -> bwd [10,30): pure dependency chain.
        let tasks = vec![
            task("pe", "fwd", 0, 10, 0, vec![], None),
            task("pe", "bwd-data", 10, 30, 10, vec![0], None),
        ];
        let r = analyze_dag(&tasks, "serial");
        assert_eq!(r.makespan, 30);
        assert_eq!(r.chain.len(), 2);
        assert_eq!(r.chain[0].via, Via::Start);
        assert_eq!(r.chain[1].via, Via::Dep);
        let total: u64 = r.blame.iter().map(|b| b.time).sum();
        assert_eq!(total, 30);
        assert!((r.blame.iter().map(|b| b.fraction).sum::<f64>() - 1.0).abs() < 1e-12);
        validate_critpath(&r.to_json()).expect("valid report");
    }

    #[test]
    fn resource_waits_route_the_chain_through_the_blocker() {
        // dram holds task 0 [0,100); task 2 is ready at 10 (dep task 1)
        // but admitted at 100. The chain must pass through the blocking
        // weight-load, not the cheap dependency.
        let tasks = vec![
            task("dram", "weight-load", 0, 100, 0, vec![], None),
            task("pe", "fwd", 0, 10, 0, vec![], None),
            task("dram", "spill", 100, 130, 10, vec![1], Some(0)),
        ];
        let r = analyze_dag(&tasks, "blocked");
        assert_eq!(r.makespan, 130);
        let labels: Vec<&str> = r.chain.iter().map(|s| s.kind.as_str()).collect();
        assert_eq!(labels, ["weight-load", "spill"]);
        assert_eq!(r.chain[1].via, Via::Resource);
        assert_eq!(
            r.queue_wait,
            vec![QueueWait {
                lane: "dram".into(),
                time: 90
            }]
        );
        let total: u64 = r.blame.iter().map(|b| b.time).sum();
        assert_eq!(total, 130);
        validate_critpath(&r.to_json()).expect("valid report");
    }

    #[test]
    fn blame_table_sorts_by_descending_time() {
        let tasks = vec![
            task("pe", "fwd", 0, 10, 0, vec![], None),
            task("dram", "weight-load", 10, 100, 10, vec![0], None),
        ];
        let r = analyze_dag(&tasks, "sorted");
        assert_eq!(r.blame[0].kind, "weight-load");
        assert_eq!(r.blame[1].kind, "fwd");
    }

    #[test]
    fn empty_dag_yields_an_empty_valid_report() {
        let r = analyze_dag(&[], "empty");
        assert_eq!(r.makespan, 0);
        assert!(r.chain.is_empty());
        validate_critpath(&r.to_json()).expect("empty report is valid");
    }

    fn rec(cat: &'static str, name: &str, start_ns: u64, end_ns: u64) -> SpanRecord {
        SpanRecord {
            name: name.into(),
            cat,
            start_ns,
            end_ns,
        }
    }

    #[test]
    fn measured_lanes_classify_gaps_by_threshold() {
        let snap = TraceSnapshot {
            lanes: vec![LaneSnapshot {
                name: "worker".into(),
                // busy [0,100) and [150,250) and [1250,1350):
                // gap 50 (queue-wait at threshold 50), gap 1000 (idle).
                spans: vec![
                    rec("pool", "a", 0, 100),
                    rec("pool", "b", 150, 250),
                    rec("pool", "c", 1250, 1350),
                ],
                dropped: 0,
            }],
        };
        let r = analyze_snapshot(&snap, Some(50), "gaps");
        assert_eq!(r.mode, "measured");
        assert_eq!(r.makespan, 1350);
        let l = &r.lanes[0];
        assert_eq!(
            (l.busy, l.queue_wait, l.idle, l.extent),
            (300, 50, 1000, 1350)
        );
        let total: u64 = r.blame.iter().map(|b| b.time).sum();
        assert_eq!(total, l.extent);
        validate_critpath(&r.to_json()).expect("valid measured report");
    }

    #[test]
    fn measured_nested_and_overlapping_spans_coalesce() {
        let snap = TraceSnapshot {
            lanes: vec![LaneSnapshot {
                name: "w".into(),
                spans: vec![
                    rec("stage", "outer", 0, 100),
                    rec("pool", "inner", 20, 60),
                    rec("pool", "tail", 90, 140),
                ],
                dropped: 0,
            }],
        };
        let r = analyze_snapshot(&snap, None, "nested");
        assert_eq!(r.lanes[0].busy, 140);
        assert_eq!(r.lanes[0].idle, 0);
        validate_critpath(&r.to_json()).expect("valid");
    }

    #[test]
    fn relabel_takes_the_dominant_stage_name() {
        let snap = TraceSnapshot {
            lanes: vec![
                LaneSnapshot {
                    name: "adagp-worker-0".into(),
                    spans: vec![
                        rec("stage", "train", 0, 10),
                        rec("stage", "train", 10, 20),
                        rec("stage", "datagen", 20, 30),
                        rec("pool", "task", 2, 4),
                    ],
                    dropped: 0,
                },
                LaneSnapshot {
                    name: "plain".into(),
                    spans: vec![rec("pool", "task", 0, 5)],
                    dropped: 0,
                },
            ],
        };
        let out = relabel_lanes_by_cat(&snap, "stage");
        assert_eq!(out.lanes[0].name, "train");
        assert_eq!(out.lanes[1].name, "plain");
    }

    #[test]
    fn validator_rejects_broken_invariants() {
        let tasks = vec![
            task("pe", "fwd", 0, 10, 0, vec![], None),
            task("pe", "bwd-data", 10, 30, 10, vec![0], None),
        ];
        let good = analyze_dag(&tasks, "ok").to_json();
        validate_critpath(&good).expect("baseline valid");
        // Break the makespan: chain no longer reaches it.
        let broken = good.replace("\"makespan\": 30", "\"makespan\": 31");
        assert!(validate_critpath(&broken).is_err());
        // Break the schema tag.
        let broken = good.replace(CRITPATH_SCHEMA, "adagp-critpath-v0");
        assert!(validate_critpath(&broken).is_err());
        // Break zero-slack consistency: a dep edge with hidden slack.
        let broken = good.replace("\"ready\": 10", "\"ready\": 9");
        assert!(validate_critpath(&broken).is_err());
        assert!(validate_critpath("not json").is_err());
    }

    #[test]
    fn truncated_chains_fail_validation() {
        // unblocked_by points at a task that does not end at our start:
        // the walk truncates, and the validator rejects the report.
        let tasks = vec![
            task("pe", "fwd", 0, 50, 0, vec![], None),
            task("pe", "fwd", 60, 90, 0, vec![], Some(0)),
        ];
        let r = analyze_dag(&tasks, "truncated");
        assert!(validate_critpath(&r.to_json()).is_err());
    }
}
