//! # ada-gp
//!
//! Umbrella crate for the ADA-GP reproduction (MICRO 2023): re-exports the
//! workspace crates so examples and downstream users can depend on a
//! single package.
//!
//! * [`runtime`] — shared thread pool, bounded queue, stage stats.
//! * [`tensor`] — dense f32 tensors and NN kernels (fwd + bwd).
//! * [`nn`] — layers, models, optimizers, schedulers, datasets, metrics.
//! * [`adagp`] — the ADA-GP algorithm: predictor, reorganization, phases.
//! * [`accel`] — accelerator cycle/energy/area models.
//! * [`sim`] — discrete-event, layer-granular accelerator simulator.
//! * [`pipeline`] — GPipe/DAPPLE/Chimera schedule models.
//! * [`obs`] — spans, counters/histograms, Chrome-trace export.
//!
//! ```
//! use ada_gp::adagp::{AdaGp, AdaGpConfig};
//! use ada_gp::nn::{containers::Sequential, layers::{Conv2d, Flatten, Linear}};
//! use ada_gp::tensor::Prng;
//!
//! let mut rng = Prng::seed_from_u64(0);
//! let mut model = Sequential::new();
//! model.push(Conv2d::new(3, 4, 3, 1, 1, true, &mut rng));
//! model.push(Flatten::new());
//! model.push(Linear::new(4 * 8 * 8, 10, true, &mut rng));
//! let adagp = AdaGp::new(AdaGpConfig::default(), &mut model, &mut rng);
//! assert_eq!(adagp.sites().len(), 2);
//! ```

pub use adagp_accel as accel;
pub use adagp_core as adagp;
pub use adagp_nn as nn;
pub use adagp_obs as obs;
pub use adagp_pipeline as pipeline;
pub use adagp_runtime as runtime;
pub use adagp_sim as sim;
pub use adagp_tensor as tensor;
